(* Tests for the sizing core: objectives, the reduced engine, the full
   eq.-17 formulation, the deterministic baseline, and reports. *)

open Circuit
open Sizing

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let model = Sigma_model.paper_default

(* ---- Objective ------------------------------------------------------------- *)

let test_objective_describe () =
  Alcotest.(check string) "area" "min area" (Objective.describe Objective.Min_area);
  Alcotest.(check string) "mu" "min mu" (Objective.describe (Objective.Min_delay 0.));
  Alcotest.(check string) "mu+sigma" "min mu+sigma"
    (Objective.describe (Objective.Min_delay 1.));
  Alcotest.(check string) "mu+3sigma" "min mu+3sigma"
    (Objective.describe (Objective.Min_delay 3.));
  Alcotest.(check string) "bounded" "min area s.t. mu+3sigma <= 10"
    (Objective.describe (Objective.Min_area_bounded { k = 3.; bound = 10. }));
  Alcotest.(check string) "min sigma" "min sigma s.t. mu = 5"
    (Objective.describe (Objective.Min_sigma { mu = 5. }));
  Alcotest.(check string) "max sigma" "max sigma s.t. mu = 5"
    (Objective.describe (Objective.Max_sigma { mu = 5. }))

(* ---- Engine ----------------------------------------------------------------- *)

let test_min_area_trivial () =
  let net = Generate.tree () in
  let s = Engine.solve ~model net Objective.Min_area in
  Alcotest.(check bool) "converged" true s.Engine.converged;
  check_float "area = gate count" 7. s.Engine.area;
  Array.iter (fun sz -> check_float "all at lower bound" 1. sz) s.Engine.sizes

let test_min_delay_beats_unsized () =
  let net = Generate.tree () in
  let unsized = Engine.solve ~model net Objective.Min_area in
  let fast = Engine.solve ~model net (Objective.Min_delay 0.) in
  Alcotest.(check bool) "faster" true (fast.Engine.mu < unsized.Engine.mu);
  Alcotest.(check bool) "bigger" true (fast.Engine.area > unsized.Engine.area);
  Alcotest.(check bool) "converged" true fast.Engine.converged

let test_min_delay_tree_optimum () =
  (* Level-1 gates have only primary inputs upstream, so upsizing them is
     pure gain and they saturate; the root gate loads its fanins, so its
     optimal size is interior.  The optimum must be at least as good as
     the all-maximum sizing. *)
  let net = Generate.tree () in
  let s = Engine.solve ~model net (Objective.Min_delay 0.) in
  List.iter
    (fun leaf ->
      if s.Engine.sizes.(leaf) < 2.99 then
        Alcotest.failf "leaf gate %d should saturate, got %.3f" leaf s.Engine.sizes.(leaf))
    [ 0; 1; 3; 4 ];
  let all_max, _ = Engine.evaluate ~model net ~sizes:(Netlist.max_sizes net) in
  Alcotest.(check bool) "at least as fast as all-max" true
    (s.Engine.mu <= Statdelay.Normal.mu all_max.Sta.Ssta.circuit +. 1e-6)

let test_guard_band_ordering () =
  (* Minimising mu + k sigma for growing k yields (weakly) growing mu and
     shrinking sigma at the optimum. *)
  let net =
    Generate.random_dag { Generate.default_spec with Generate.n_gates = 80; seed = 21 }
  in
  let s0 = Engine.solve ~model net (Objective.Min_delay 0.) in
  let s3 = Engine.solve ~model net (Objective.Min_delay 3.) in
  Alcotest.(check bool) "sigma shrinks" true
    (s3.Engine.sigma <= s0.Engine.sigma +. 1e-6);
  Alcotest.(check bool) "mu grows slightly" true (s3.Engine.mu >= s0.Engine.mu -. 0.05);
  (* and the k-objective is no worse under its own metric (to solver
     tolerance) *)
  Alcotest.(check bool) "better mu+3sigma" true
    (s3.Engine.mu +. (3. *. s3.Engine.sigma)
     <= s0.Engine.mu +. (3. *. s0.Engine.sigma) +. 0.01)

let test_area_bounded_constraint_met () =
  let net = Generate.tree () in
  let unsized = Engine.solve ~model net Objective.Min_area in
  let bound = 0.85 *. unsized.Engine.mu in
  let s = Engine.solve ~model net (Objective.Min_area_bounded { k = 0.; bound }) in
  Alcotest.(check bool) "converged" true s.Engine.converged;
  Alcotest.(check bool) "constraint met" true (s.Engine.mu <= bound +. 1e-4);
  Alcotest.(check bool) "constraint active" true (s.Engine.mu >= bound -. 0.05);
  Alcotest.(check bool) "cheaper than full sizing" true (s.Engine.area < 21.)

let test_area_bounded_tighter_k_costs_area () =
  let net = Generate.apex2_like () in
  let unsized = Engine.solve ~model net Objective.Min_area in
  let bound = 0.85 *. unsized.Engine.mu in
  let area_of k =
    (Engine.solve ~model net (Objective.Min_area_bounded { k; bound })).Engine.area
  in
  let a0 = area_of 0. and a1 = area_of 1. and a3 = area_of 3. in
  Alcotest.(check bool) "k=1 costs more than k=0" true (a1 >= a0 -. 0.2);
  Alcotest.(check bool) "k=3 costs more than k=1" true (a3 >= a1 -. 0.2);
  Alcotest.(check bool) "strictly increasing overall" true (a3 > a0)

let test_min_sigma_vs_max_sigma () =
  let net = Generate.tree () in
  let target = 6.5 in
  let area_row =
    Engine.solve ~model net (Objective.Min_area_bounded { k = 0.; bound = target })
  in
  let min_s = Engine.solve ~model net (Objective.Min_sigma { mu = target }) in
  let max_s = Engine.solve ~model net (Objective.Max_sigma { mu = target }) in
  (* All three hold the mean. *)
  check_float ~eps:1e-3 "area row mu" target area_row.Engine.mu;
  check_float ~eps:1e-3 "min sigma mu" target min_s.Engine.mu;
  check_float ~eps:1e-3 "max sigma mu" target max_s.Engine.mu;
  (* Paper Table 2: min sigma <= area-optimal sigma <= max sigma, and
     minimising sigma costs more area than minimising area. *)
  Alcotest.(check bool) "sigma ordering low" true
    (min_s.Engine.sigma <= area_row.Engine.sigma +. 1e-6);
  Alcotest.(check bool) "sigma ordering high" true
    (max_s.Engine.sigma >= area_row.Engine.sigma -. 1e-6);
  Alcotest.(check bool) "sigma margin exists" true
    (max_s.Engine.sigma -. min_s.Engine.sigma > 0.01);
  Alcotest.(check bool) "min sigma costs area" true
    (min_s.Engine.area >= area_row.Engine.area -. 1e-6)

let test_table3_symmetry () =
  (* min area and min sigma treat the symmetric tree gate groups
     identically: S_A=S_B=S_D=S_E and S_C=S_F (paper Table 3). *)
  let net = Generate.tree () in
  List.iter
    (fun objective ->
      let s = Engine.solve ~model net objective in
      let sz = s.Engine.sizes in
      let tol = 0.02 in
      if abs_float (sz.(0) -. sz.(1)) > tol || abs_float (sz.(0) -. sz.(3)) > tol
         || abs_float (sz.(0) -. sz.(4)) > tol then
        Alcotest.failf "level-1 group not symmetric: %.3f %.3f %.3f %.3f" sz.(0) sz.(1)
          sz.(3) sz.(4);
      if abs_float (sz.(2) -. sz.(5)) > tol then
        Alcotest.failf "level-2 group not symmetric: %.3f %.3f" sz.(2) sz.(5);
      (* gates toward the output get larger speed factors *)
      if not (sz.(2) >= sz.(0) -. tol && sz.(6) >= sz.(2) -. tol) then
        Alcotest.failf "speed factors not increasing toward output: %.3f %.3f %.3f" sz.(0)
          sz.(2) sz.(6))
    [
      Objective.Min_area_bounded { k = 0.; bound = 6.5 };
      Objective.Min_sigma { mu = 6.5 };
    ]

let test_sizes_within_bounds () =
  let net = Generate.apex2_like () in
  let s = Engine.solve ~model net (Objective.Min_delay 3.) in
  Alcotest.(check unit) "valid" () (Netlist.check_sizes net s.Engine.sizes)

let test_engine_start_options () =
  let net = Generate.tree () in
  let solve start =
    Engine.solve
      ~options:{ Engine.default_options with Engine.start }
      ~model net (Objective.Min_delay 0.)
  in
  let a = solve `Low and b = solve `High and c = solve `Mid in
  (* Same optimum (to solver tolerance) from every start. *)
  check_float ~eps:0.01 "low vs mid" c.Engine.mu a.Engine.mu;
  check_float ~eps:0.01 "high vs mid" c.Engine.mu b.Engine.mu;
  let d =
    solve (`Given (Array.make (Netlist.n_gates net) 2.5))
  in
  check_float ~eps:0.01 "given vs mid" c.Engine.mu d.Engine.mu

let test_engine_restarts () =
  let net = Generate.tree () in
  let s =
    Engine.solve
      ~options:{ Engine.default_options with Engine.restarts = 2 }
      ~model net (Objective.Min_sigma { mu = 6.5 })
  in
  Alcotest.(check bool) "converged" true s.Engine.converged;
  check_float ~eps:1e-3 "mu held" 6.5 s.Engine.mu

let test_engine_invalid_inputs () =
  let net = Generate.tree () in
  Alcotest.check_raises "bad bound" (Invalid_argument "Engine: delay bound must be positive")
    (fun () ->
      ignore (Engine.solve ~model net (Objective.Min_area_bounded { k = 0.; bound = -1. })));
  Alcotest.check_raises "bad mu" (Invalid_argument "Engine: target mean delay must be positive")
    (fun () -> ignore (Engine.solve ~model net (Objective.Min_sigma { mu = 0. })))

let test_engine_zero_sigma_model () =
  (* Classical deterministic sizing as the Zero special case. *)
  let net = Generate.tree () in
  let s = Engine.solve ~model:Sigma_model.Zero net (Objective.Min_delay 0.) in
  check_float "sigma is zero" 0. s.Engine.sigma;
  Alcotest.(check bool) "still sizes" true (s.Engine.area > 7.)

(* ---- Warm starts ----------------------------------------------------------- *)

let solve_warm ?(options = Engine.default_options) warm_start net obj =
  Engine.solve ~options:{ options with Engine.warm_start } ~model net obj

(* The statistical metric the solver minimizes, for cold/warm comparison. *)
let metric (obj : Objective.t) (s : Engine.solution) =
  match obj with
  | Objective.Min_delay k -> s.Engine.mu +. (k *. s.Engine.sigma)
  | Objective.Min_area_bounded _ | Objective.Min_weighted _ | Objective.Min_area ->
      s.Engine.area
  | Objective.Min_sigma _ -> s.Engine.sigma
  | Objective.Max_sigma _ -> -.s.Engine.sigma

let test_warm_start_gp_never_worse () =
  (* Regression: a GP warm start must never land the solver on a worse
     local optimum than the cold multi-phase start.  Checked across the
     objective shapes with a GP analogue, on two circuit families. *)
  let cases =
    [
      ("tree min mu", Generate.tree (), Objective.Min_delay 0.);
      ("tree min mu+3s", Generate.tree (), Objective.Min_delay 3.);
      ("fig2 min mu", Generate.example_fig2 (), Objective.Min_delay 0.);
      ( "fig2 bounded",
        Generate.example_fig2 (),
        Objective.Min_area_bounded { k = 0.; bound = 1.6 } );
    ]
  in
  List.iter
    (fun (name, net, obj) ->
      let cold = Engine.solve ~model net obj in
      let warm = solve_warm `Gp net obj in
      Alcotest.(check bool) (name ^ ": warm converged") true warm.Engine.converged;
      Alcotest.(check bool) (name ^ ": feasible") true
        (warm.Engine.max_violation <= 1e-6);
      let c = metric obj cold and w = metric obj warm in
      if w > c +. (1e-4 *. Float.max 1. (Float.abs c)) then
        Alcotest.failf "%s: GP warm start worse than cold (%.9f > %.9f)" name w c)
    cases

let test_warm_start_gp_fewer_evals_apex2 () =
  (* The headline warm-start claim (recorded in EXPERIMENTS.md, asserted
     by bench gp): seeding the statistical solve from the GP optimum
     cuts the evaluation count on apex2*. *)
  let net = Generate.apex2_like () in
  let obj = Objective.Min_delay 3. in
  let cold = Engine.solve ~model net obj in
  let warm = solve_warm `Gp net obj in
  Alcotest.(check bool) "cold converged" true cold.Engine.converged;
  Alcotest.(check bool) "warm converged" true warm.Engine.converged;
  if warm.Engine.evaluations >= cold.Engine.evaluations then
    Alcotest.failf "GP warm start did not save evaluations: warm %d >= cold %d"
      warm.Engine.evaluations cold.Engine.evaluations;
  (* Cold and warm converge to the same basin but stop at different
     iterates; allow the solver's own relative tolerance. *)
  let c = metric obj cold and w = metric obj warm in
  Alcotest.(check bool) "warm not worse" true
    (w <= c +. (1e-3 *. Float.max 1. (Float.abs c)))

let test_warm_start_baseline () =
  (* The deterministic TILOS warm start is a valid (if weaker) seed: the
     solve converges to the same optimum as cold. *)
  let net = Generate.tree () in
  let obj = Objective.Min_delay 0. in
  let cold = Engine.solve ~model net obj in
  let warm = solve_warm `Baseline net obj in
  Alcotest.(check bool) "converged" true warm.Engine.converged;
  check_float ~eps:0.01 "same optimum" cold.Engine.mu warm.Engine.mu

let test_warm_start_min_sigma_phases () =
  (* Min_sigma solves in two phases; the warm start must apply to the
     first only (the second is warm-started from the first's solution,
     which would otherwise be overridden). *)
  let net = Generate.tree () in
  let obj = Objective.Min_sigma { mu = 6.5 } in
  let cold = Engine.solve ~model net obj in
  let warm = solve_warm `Gp net obj in
  Alcotest.(check bool) "converged" true warm.Engine.converged;
  check_float ~eps:1e-3 "mu held" 6.5 warm.Engine.mu;
  Alcotest.(check bool) "sigma not worse than cold + tol" true
    (warm.Engine.sigma <= cold.Engine.sigma +. 1e-4)

let test_warm_start_no_gp_analogue_falls_back_cleanly () =
  (* Objectives without a GP analogue must silently use the normal start
     rather than fail. *)
  let net = Generate.tree () in
  let s = solve_warm `Gp net (Objective.Min_sigma { mu = 6.5 }) in
  Alcotest.(check bool) "converged" true s.Engine.converged;
  let a = solve_warm `Gp net Objective.Min_area in
  check_float "min area trivial under warm flag" 7. a.Engine.area

(* ---- Full formulation ---------------------------------------------------------- *)

let test_formulate_counts () =
  let net = Generate.example_fig2 () in
  let f = Formulate.build ~model net (Objective.Min_delay 3.) in
  (* 4 gates x (S, mu_t, var_t, mu_T, var_T) = 20 variables, plus max
     chains: D's fanin fold (3 operands -> 2 steps, but operands include
     variables) and the PO fold (1 step): each step adds 2 vars. *)
  Alcotest.(check int) "variables" 26 (Formulate.n_variables f);
  Alcotest.(check int) "constraints" 22 (Formulate.n_constraints f)

let test_formulate_rejects_min_area () =
  let net = Generate.example_fig2 () in
  Alcotest.check_raises "min area"
    (Invalid_argument "Formulate.build: unconstrained Min_area needs no NLP") (fun () ->
      ignore (Formulate.build ~model net Objective.Min_area))

let test_formulate_initial_point_feasible () =
  let net = Generate.example_fig2 () in
  let f = Formulate.build ~model net (Objective.Min_delay 3.) in
  let x0 = Formulate.initial_point f `Mid in
  let p = Formulate.problem f in
  (* The SSTA-consistent start satisfies all structural equalities. *)
  Alcotest.(check bool) "feasible" true (Nlp.Problem.max_violation p x0 < 1e-9)

let test_formulate_constraint_jacobians () =
  (* Every structural constraint's hand-written gradient matches finite
     differences at a random interior point. *)
  let net = Generate.example_fig2 () in
  let f = Formulate.build ~model net (Objective.Min_delay 3.) in
  let x0 = Formulate.initial_point f `Mid in
  (* Perturb away from the feasible manifold to avoid special points. *)
  let rng = Util.Rng.create 3 in
  let x = Array.map (fun v -> v +. Util.Rng.uniform rng ~lo:0.01 ~hi:0.05) x0 in
  let p = Formulate.problem f in
  Array.iteri
    (fun i (c : Nlp.Problem.constr) ->
      let v = Nlp.Check.gradient ~rtol:1e-4 ~atol:1e-6 c.Nlp.Problem.eval x in
      if not v.Nlp.Check.ok then
        Alcotest.failf "constraint %d (%s): %s" i c.Nlp.Problem.cname
          (Format.asprintf "%a" Nlp.Check.pp_verdict v))
    p.Nlp.Problem.constraints;
  let v = Nlp.Check.gradient ~rtol:1e-4 ~atol:1e-6 p.Nlp.Problem.base.Nlp.Problem.objective x in
  Alcotest.(check bool) "objective gradient ok" true v.Nlp.Check.ok

let test_formulate_gradients_all_objectives () =
  (* Gradient verification across the whole objective menu, at random
     feasible points (manufactured by Formulate.consistent_point from
     random interior sizings) on several generated circuits — not just
     the worked example at the canonical mid start. *)
  let rng = Util.Rng.create 97 in
  let small_dag =
    Generate.random_dag
      {
        Generate.default_spec with
        Generate.n_gates = 24;
        n_pis = 6;
        target_depth = 4;
        seed = 5;
      }
  in
  List.iter
    (fun (cname, net) ->
      let lo = Netlist.min_sizes net and hi = Netlist.max_sizes net in
      (* A mu target both Min_sigma and Max_sigma can reach: between the
         all-min (slowest) and all-max (fastest) mean delays. *)
      let mu_at sizes =
        Statdelay.Normal.mu (Sta.Ssta.analyze ~model net ~sizes).Sta.Ssta.circuit
      in
      let mu_slow = mu_at lo and mu_fast = mu_at hi in
      let mu_target = 0.5 *. (mu_slow +. mu_fast) in
      let bound = 0.95 *. mu_slow in
      let weights = Activity.power_weights net in
      List.iter
        (fun (oname, obj) ->
          let f = Formulate.build ~model net obj in
          let p = Formulate.problem f in
          for trial = 1 to 2 do
            let sizes =
              Array.init (Netlist.n_gates net) (fun i ->
                  Util.Rng.uniform rng ~lo:lo.(i) ~hi:hi.(i))
            in
            let x = Formulate.consistent_point f ~sizes in
            (* Nudge off the feasible manifold so the check does not sit
               at a special point of the max constraints. *)
            let x =
              Array.map (fun v -> v +. Util.Rng.uniform rng ~lo:0.005 ~hi:0.02) x
            in
            Array.iteri
              (fun i (c : Nlp.Problem.constr) ->
                let v = Nlp.Check.gradient ~rtol:1e-4 ~atol:1e-6 c.Nlp.Problem.eval x in
                if not v.Nlp.Check.ok then
                  Alcotest.failf "%s/%s trial %d constraint %d (%s): %s" cname oname
                    trial i c.Nlp.Problem.cname
                    (Format.asprintf "%a" Nlp.Check.pp_verdict v))
              p.Nlp.Problem.constraints;
            let v =
              Nlp.Check.gradient ~rtol:1e-4 ~atol:1e-6
                p.Nlp.Problem.base.Nlp.Problem.objective x
            in
            if not v.Nlp.Check.ok then
              Alcotest.failf "%s/%s trial %d objective: %s" cname oname trial
                (Format.asprintf "%a" Nlp.Check.pp_verdict v)
          done)
        [
          ("min-delay-mu", Objective.Min_delay 0.);
          ("min-delay-3s", Objective.Min_delay 3.);
          ("min-area-bounded", Objective.Min_area_bounded { k = 1.; bound });
          ("min-sigma", Objective.Min_sigma { mu = mu_target });
          ("max-sigma", Objective.Max_sigma { mu = mu_target });
          ( "min-power",
            Objective.Min_weighted { label = "power"; weights; k = 1.; bound } );
        ])
    [
      ("fig2", Generate.example_fig2 ());
      ("tree", Generate.tree ());
      ("dag24", small_dag);
    ]

let test_formulate_matches_reduced_fig2 () =
  let net = Generate.example_fig2 () in
  let objective = Objective.Min_delay 3. in
  let full = Formulate.solve (Formulate.build ~model net objective) in
  let reduced = Engine.solve ~model net objective in
  Alcotest.(check bool) "full converged" true full.Engine.converged;
  check_float ~eps:2e-3 "same mu" reduced.Engine.mu full.Engine.mu;
  check_float ~eps:2e-3 "same sigma" reduced.Engine.sigma full.Engine.sigma;
  Array.iteri
    (fun i s ->
      if abs_float (s -. reduced.Engine.sizes.(i)) > 0.02 then
        Alcotest.failf "size %d: full %.4f vs reduced %.4f" i s reduced.Engine.sizes.(i))
    full.Engine.sizes

let test_formulate_matches_reduced_tree_bounded () =
  let net = Generate.tree () in
  let objective = Objective.Min_area_bounded { k = 1.; bound = 6.5 } in
  let full = Formulate.solve (Formulate.build ~model net objective) in
  let reduced = Engine.solve ~model net objective in
  Alcotest.(check bool) "full converged" true full.Engine.converged;
  check_float ~eps:0.05 "same area" reduced.Engine.area full.Engine.area

let test_formulate_eq14_same_optimum () =
  let net = Generate.example_fig2 () in
  let objective = Objective.Min_delay 3. in
  let lin = Formulate.solve (Formulate.build ~linearized:true ~model net objective) in
  let raw = Formulate.solve (Formulate.build ~linearized:false ~model net objective) in
  check_float ~eps:2e-3 "same mu" lin.Engine.mu raw.Engine.mu;
  check_float ~eps:2e-3 "same sigma" lin.Engine.sigma raw.Engine.sigma

(* ---- Baseline --------------------------------------------------------------------- *)

let test_baseline_minimize_delay () =
  let net = Generate.tree () in
  let r = Baseline.minimize_delay net in
  let unsized = (Sta.Dsta.analyze net ~sizes:(Netlist.min_sizes net)).Sta.Dsta.circuit in
  Alcotest.(check bool) "improves" true (r.Baseline.delay < unsized);
  Alcotest.(check bool) "costs area" true (r.Baseline.area > 7.);
  Alcotest.(check unit) "sizes valid" () (Netlist.check_sizes net r.Baseline.sizes)

let test_baseline_meet_deadline () =
  let net = Generate.tree () in
  let unsized = (Sta.Dsta.analyze net ~sizes:(Netlist.min_sizes net)).Sta.Dsta.circuit in
  let deadline = 0.9 *. unsized in
  let r = Baseline.meet_deadline net ~deadline in
  Alcotest.(check bool) "met" true r.Baseline.met;
  Alcotest.(check bool) "delay under deadline" true (r.Baseline.delay <= deadline);
  (* lean: cheaper than full sizing *)
  Alcotest.(check bool) "lean" true (r.Baseline.area < 21.)

let test_baseline_impossible_deadline () =
  let net = Generate.tree () in
  let r = Baseline.meet_deadline net ~deadline:0.1 in
  Alcotest.(check bool) "not met" false r.Baseline.met

let test_baseline_near_statistical_area () =
  (* At the same deadline (accounting for the mean-shift of the statistical
     model) the greedy baseline should land in the same area ballpark. *)
  let net = Generate.apex2_like () in
  let unsized = (Sta.Dsta.analyze net ~sizes:(Netlist.min_sizes net)).Sta.Dsta.circuit in
  let deadline = 0.8 *. unsized in
  let greedy = Baseline.meet_deadline net ~deadline in
  Alcotest.(check bool) "met" true greedy.Baseline.met;
  Alcotest.(check bool) "bounded blowup" true (greedy.Baseline.area < 3. *. 117.)

let test_engine_matches_brute_force_fig2 () =
  (* The paper claims to solve the sizing problem "exactly".  Verify global
     optimality of the engine on the fig-2 example by exhaustive grid
     search over all four speed factors (0.05 resolution, 41^4 ~ 2.8M
     points reduced to a coarse 0.1 pass + local 0.025 refinement). *)
  let net = Generate.example_fig2 () in
  let metric sizes =
    let res = Sta.Ssta.analyze ~model net ~sizes in
    Statdelay.Normal.mu res.Sta.Ssta.circuit
    +. (3. *. Statdelay.Normal.sigma res.Sta.Ssta.circuit)
  in
  let best = ref infinity and best_x = ref [| 1.; 1.; 1.; 1. |] in
  let grid lo hi step =
    let n = int_of_float (Float.round ((hi -. lo) /. step)) in
    Array.init (n + 1) (fun i -> min hi (lo +. (float_of_int i *. step)))
  in
  (* coarse pass *)
  let coarse = grid 1. 3. 0.1 in
  Array.iter (fun a ->
      Array.iter (fun b ->
          Array.iter (fun c ->
              Array.iter (fun d ->
                  let x = [| a; b; c; d |] in
                  let v = metric x in
                  if v < !best then begin
                    best := v;
                    best_x := Array.copy x
                  end)
                coarse)
            coarse)
        coarse)
    coarse;
  (* refine around the coarse winner *)
  let refine_axis v = grid (max 1. (v -. 0.1)) (min 3. (v +. 0.1)) 0.025 in
  let axes = Array.map refine_axis !best_x in
  Array.iter (fun a ->
      Array.iter (fun b ->
          Array.iter (fun c ->
              Array.iter (fun d ->
                  let v = metric [| a; b; c; d |] in
                  if v < !best then best := v)
                axes.(3))
            axes.(2))
        axes.(1))
    axes.(0);
  let s = Engine.solve ~model net (Objective.Min_delay 3.) in
  let engine_value = s.Engine.mu +. (3. *. s.Engine.sigma) in
  (* the engine must be at least as good as the best grid point *)
  Alcotest.(check bool) "engine <= grid best" true (engine_value <= !best +. 1e-4)

(* ---- Sweep ------------------------------------------------------------------------- *)

let test_sweep_monotone_pareto () =
  let net = Generate.tree () in
  let curve = Sweep.area_delay ~model ~points:4 net in
  Alcotest.(check int) "point count" 4 (List.length curve.Sweep.points);
  Alcotest.(check bool) "range ordered" true (curve.Sweep.mu_fast < curve.Sweep.mu_slow);
  (* Budgets decrease along the list; areas must (weakly) increase. *)
  let rec walk = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "budgets decreasing" true (b.Sweep.bound < a.Sweep.bound);
        Alcotest.(check bool) "area increases as budget tightens" true
          (b.Sweep.solution.Engine.area >= a.Sweep.solution.Engine.area -. 0.05);
        walk rest
    | _ -> ()
  in
  walk curve.Sweep.points;
  (* Every point satisfies its budget. *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "feasible" true
        (p.Sweep.solution.Engine.mu <= p.Sweep.bound +. 1e-3))
    curve.Sweep.points

let test_sweep_guard_banded () =
  let net = Generate.tree () in
  let curve = Sweep.area_delay ~model ~k:3. ~points:3 net in
  List.iter
    (fun p ->
      let s = p.Sweep.solution in
      Alcotest.(check bool) "mu+3sigma within budget" true
        (s.Engine.mu +. (3. *. s.Engine.sigma) <= p.Sweep.bound +. 1e-3))
    curve.Sweep.points

let test_sweep_validation () =
  let net = Generate.tree () in
  Alcotest.check_raises "too few points"
    (Invalid_argument "Sweep.area_delay: need at least two points") (fun () ->
      ignore (Sweep.area_delay ~model ~points:1 net))

(* ---- Report ------------------------------------------------------------------------ *)

let test_report_cpu_string () =
  Alcotest.(check string) "seconds" "18.5 s" (Report.cpu_string 18.5);
  Alcotest.(check string) "minutes" "41 m 13.5 s" (Report.cpu_string ((41. *. 60.) +. 13.5))

let test_report_row_shape () =
  let net = Generate.tree () in
  let s = Engine.solve ~model net Objective.Min_area in
  let cells = Report.row s in
  Alcotest.(check int) "six cells" 6 (List.length cells);
  Alcotest.(check string) "label" "sum S_i" (List.nth cells 0)

let test_report_speed_factors_order () =
  let net = Generate.tree () in
  let s = Engine.solve ~model net Objective.Min_area in
  let sf = Report.speed_factors net s in
  Alcotest.(check (list string)) "names in order"
    [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ]
    (List.map fst sf)

let () =
  Alcotest.run "sizing"
    [
      ("objective", [ Alcotest.test_case "describe" `Quick test_objective_describe ]);
      ( "engine",
        [
          Alcotest.test_case "min area trivial" `Quick test_min_area_trivial;
          Alcotest.test_case "min delay beats unsized" `Quick test_min_delay_beats_unsized;
          Alcotest.test_case "tree min-delay optimum" `Quick test_min_delay_tree_optimum;
          Alcotest.test_case "guard band ordering" `Quick test_guard_band_ordering;
          Alcotest.test_case "bounded constraint met" `Quick test_area_bounded_constraint_met;
          Alcotest.test_case "tighter k costs area" `Slow
            test_area_bounded_tighter_k_costs_area;
          Alcotest.test_case "min vs max sigma" `Quick test_min_sigma_vs_max_sigma;
          Alcotest.test_case "table3 symmetry" `Quick test_table3_symmetry;
          Alcotest.test_case "sizes within bounds" `Quick test_sizes_within_bounds;
          Alcotest.test_case "start options" `Quick test_engine_start_options;
          Alcotest.test_case "restarts" `Quick test_engine_restarts;
          Alcotest.test_case "invalid inputs" `Quick test_engine_invalid_inputs;
          Alcotest.test_case "zero sigma model" `Quick test_engine_zero_sigma_model;
          Alcotest.test_case "gp warm start never worse" `Quick
            test_warm_start_gp_never_worse;
          Alcotest.test_case "gp warm start saves evaluations (apex2*)" `Slow
            test_warm_start_gp_fewer_evals_apex2;
          Alcotest.test_case "baseline warm start" `Quick test_warm_start_baseline;
          Alcotest.test_case "min-sigma warm-start phases" `Quick
            test_warm_start_min_sigma_phases;
          Alcotest.test_case "no gp analogue falls back cleanly" `Quick
            test_warm_start_no_gp_analogue_falls_back_cleanly;
          Alcotest.test_case "matches brute force (fig2)" `Slow
            test_engine_matches_brute_force_fig2;
        ] );
      ( "formulate",
        [
          Alcotest.test_case "variable/constraint counts" `Quick test_formulate_counts;
          Alcotest.test_case "rejects min area" `Quick test_formulate_rejects_min_area;
          Alcotest.test_case "initial point feasible" `Quick
            test_formulate_initial_point_feasible;
          Alcotest.test_case "constraint jacobians vs FD" `Quick
            test_formulate_constraint_jacobians;
          Alcotest.test_case "gradients: all objectives, random feasible points"
            `Slow test_formulate_gradients_all_objectives;
          Alcotest.test_case "matches reduced (fig2)" `Quick test_formulate_matches_reduced_fig2;
          Alcotest.test_case "matches reduced (tree bounded)" `Slow
            test_formulate_matches_reduced_tree_bounded;
          Alcotest.test_case "eq14 same optimum" `Quick test_formulate_eq14_same_optimum;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "minimize delay" `Quick test_baseline_minimize_delay;
          Alcotest.test_case "meet deadline" `Quick test_baseline_meet_deadline;
          Alcotest.test_case "impossible deadline" `Quick test_baseline_impossible_deadline;
          Alcotest.test_case "sane area at deadline" `Quick test_baseline_near_statistical_area;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "monotone pareto" `Slow test_sweep_monotone_pareto;
          Alcotest.test_case "guard banded" `Slow test_sweep_guard_banded;
          Alcotest.test_case "validation" `Quick test_sweep_validation;
        ] );
      ( "report",
        [
          Alcotest.test_case "cpu string" `Quick test_report_cpu_string;
          Alcotest.test_case "row shape" `Quick test_report_row_shape;
          Alcotest.test_case "speed factor order" `Quick test_report_speed_factors_order;
        ] );
    ]
