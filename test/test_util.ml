(* Tests for the util library: special functions, RNG, statistics, tables,
   numerics. *)

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

(* ---- Special ------------------------------------------------------------- *)

(* Reference values from standard tables (15+ significant digits). *)
let test_erf_known_values () =
  check_float "erf 0" 0. (Util.Special.erf 0.);
  check_float ~eps:1e-14 "erf 0.1" 0.112462916018285 (Util.Special.erf 0.1);
  check_float ~eps:1e-14 "erf 0.5" 0.520499877813047 (Util.Special.erf 0.5);
  check_float ~eps:1e-14 "erf 1" 0.842700792949715 (Util.Special.erf 1.);
  check_float ~eps:1e-14 "erf 2" 0.995322265018953 (Util.Special.erf 2.);
  check_float ~eps:1e-14 "erf 3" 0.999977909503001 (Util.Special.erf 3.);
  check_float ~eps:1e-15 "erf -1" (-0.842700792949715) (Util.Special.erf (-1.))

let test_erfc_known_values () =
  check_float ~eps:1e-14 "erfc 1" 0.157299207050285 (Util.Special.erfc 1.);
  check_float ~eps:1e-17 "erfc 3" 2.20904969985854e-5 (Util.Special.erfc 3.);
  (* far tail: relative accuracy matters *)
  let v = Util.Special.erfc 6. in
  Alcotest.(check bool)
    "erfc 6 relative" true
    (Util.Numerics.approx_eq ~rtol:1e-10 v 2.15197367124989e-17);
  check_float ~eps:1e-14 "erfc -1 = 2 - erfc 1" (2. -. 0.157299207050285)
    (Util.Special.erfc (-1.))

let test_erf_erfc_consistency () =
  List.iter
    (fun x ->
      check_float ~eps:1e-13
        (Printf.sprintf "erf+erfc at %g" x)
        1.
        (Util.Special.erf x +. Util.Special.erfc x))
    [ -3.; -0.7; 0.; 0.3; 0.46; 0.47; 1.; 3.9; 4.1; 8. ]

let test_normal_cdf () =
  check_float ~eps:1e-14 "Phi 0" 0.5 (Util.Special.normal_cdf 0.);
  check_float ~eps:1e-10 "Phi 1.96" 0.975002104851780 (Util.Special.normal_cdf 1.96);
  check_float ~eps:1e-10 "Phi -1.96" 0.024997895148220 (Util.Special.normal_cdf (-1.96));
  check_float ~eps:1e-12 "Phi 1" 0.841344746068543 (Util.Special.normal_cdf 1.);
  check_float ~eps:1e-12 "Phi 3" 0.998650101968370 (Util.Special.normal_cdf 3.)

let test_normal_pdf () =
  check_float ~eps:1e-15 "phi 0" 0.398942280401433 (Util.Special.normal_pdf 0.);
  check_float ~eps:1e-15 "phi 1" 0.241970724519143 (Util.Special.normal_pdf 1.);
  check_float ~eps:1e-16 "phi symmetric" (Util.Special.normal_pdf 1.7)
    (Util.Special.normal_pdf (-1.7))

let test_normal_ppf_roundtrip () =
  List.iter
    (fun p ->
      let x = Util.Special.normal_ppf p in
      check_float ~eps:1e-12 (Printf.sprintf "Phi(ppf %g)" p) p
        (Util.Special.normal_cdf x))
    [ 1e-8; 0.001; 0.1; 0.25; 0.5; 0.841344746068543; 0.975; 0.998; 1. -. 1e-8 ]

let test_normal_ppf_invalid () =
  Alcotest.check_raises "ppf 0" (Invalid_argument
    "Special.normal_ppf: p must lie strictly within (0, 1)") (fun () ->
      ignore (Util.Special.normal_ppf 0.));
  Alcotest.check_raises "ppf 1" (Invalid_argument
    "Special.normal_ppf: p must lie strictly within (0, 1)") (fun () ->
      ignore (Util.Special.normal_ppf 1.))

let test_log_normal_cdf () =
  (* Moderate range agrees with the direct computation. *)
  List.iter
    (fun x ->
      check_float ~eps:1e-10
        (Printf.sprintf "log Phi %g" x)
        (log (Util.Special.normal_cdf x))
        (Util.Special.log_normal_cdf x))
    [ -7.; -2.; 0.; 1.5 ];
  (* Far tail stays finite and ordered. *)
  let a = Util.Special.log_normal_cdf (-20.) in
  let b = Util.Special.log_normal_cdf (-30.) in
  Alcotest.(check bool) "tail finite" true (Float.is_finite a && Float.is_finite b);
  Alcotest.(check bool) "tail ordered" true (b < a)

let prop_erf_monotone =
  QCheck.Test.make ~name:"erf is monotone increasing" ~count:500
    QCheck.(pair (float_range (-6.) 6.) (float_range (-6.) 6.))
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Util.Special.erf lo <= Util.Special.erf hi +. 1e-15)

let prop_cdf_bounds =
  QCheck.Test.make ~name:"normal_cdf within [0,1]" ~count:500
    QCheck.(float_range (-40.) 40.)
    (fun x ->
      let v = Util.Special.normal_cdf x in
      v >= 0. && v <= 1.)

(* ---- Rng ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Util.Rng.uint64 a) (Util.Rng.uint64 b)
  done

let test_rng_seeds_differ () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  Alcotest.(check bool) "different streams" true (Util.Rng.uint64 a <> Util.Rng.uint64 b)

let test_rng_float_range () =
  let rng = Util.Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Util.Rng.float rng in
    if not (x >= 0. && x < 1.) then Alcotest.failf "float out of range: %g" x
  done

let test_rng_uniform_mean () =
  let rng = Util.Rng.create 3 in
  let st = Util.Stats.create () in
  for _ = 1 to 100_000 do
    Util.Stats.add st (Util.Rng.uniform rng ~lo:2. ~hi:4.)
  done;
  check_float ~eps:0.02 "uniform mean" 3. (Util.Stats.mean st);
  check_float ~eps:0.02 "uniform sd" (2. /. sqrt 12.) (Util.Stats.std_dev st)

let test_rng_normal_moments () =
  let rng = Util.Rng.create 5 in
  let st = Util.Stats.create () in
  for _ = 1 to 200_000 do
    Util.Stats.add st (Util.Rng.gaussian rng ~mu:10. ~sigma:2.)
  done;
  check_float ~eps:0.03 "normal mean" 10. (Util.Stats.mean st);
  check_float ~eps:0.03 "normal sd" 2. (Util.Stats.std_dev st)

let test_rng_int_bounds () =
  let rng = Util.Rng.create 9 in
  let counts = Array.make 5 0 in
  for _ = 1 to 50_000 do
    let i = Util.Rng.int rng 5 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 9_000 || c > 11_000 then Alcotest.failf "bucket %d skewed: %d" i c)
    counts

let test_rng_int_invalid () =
  let rng = Util.Rng.create 1 in
  Alcotest.check_raises "n=0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Util.Rng.int rng 0))

let test_rng_split_independent () =
  let parent = Util.Rng.create 123 in
  let child = Util.Rng.split parent in
  let a = Util.Rng.uint64 parent and b = Util.Rng.uint64 child in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let test_rng_copy () =
  let a = Util.Rng.create 11 in
  ignore (Util.Rng.uint64 a);
  let b = Util.Rng.copy a in
  Alcotest.(check int64) "copy replays" (Util.Rng.uint64 a) (Util.Rng.uint64 b)

let test_rng_shuffle_permutation () =
  let rng = Util.Rng.create 17 in
  let a = Array.init 100 (fun i -> i) in
  Util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

(* ---- Stats ----------------------------------------------------------------- *)

let test_stats_welford_vs_direct () =
  let rng = Util.Rng.create 21 in
  let samples = Array.init 1000 (fun _ -> Util.Rng.gaussian rng ~mu:5. ~sigma:3.) in
  let st = Util.Stats.of_array samples in
  let n = float_of_int (Array.length samples) in
  let mean = Array.fold_left ( +. ) 0. samples /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. samples /. (n -. 1.)
  in
  check_float ~eps:1e-9 "mean" mean (Util.Stats.mean st);
  check_float ~eps:1e-9 "variance" var (Util.Stats.variance st)

let test_stats_empty_and_single () =
  let st = Util.Stats.create () in
  Alcotest.(check int) "count empty" 0 (Util.Stats.count st);
  check_float "variance empty" 0. (Util.Stats.variance st);
  Util.Stats.add st 4.;
  check_float "mean single" 4. (Util.Stats.mean st);
  check_float "variance single" 0. (Util.Stats.variance st);
  check_float "min" 4. (Util.Stats.min_value st);
  check_float "max" 4. (Util.Stats.max_value st)

let test_stats_quantile () =
  let samples = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Util.Stats.quantile samples 0.5);
  check_float "q0" 1. (Util.Stats.quantile samples 0.);
  check_float "q1" 5. (Util.Stats.quantile samples 1.);
  check_float "q25" 2. (Util.Stats.quantile samples 0.25)

let test_stats_fraction_le () =
  let samples = [| 1.; 2.; 3.; 4. |] in
  check_float "half" 0.5 (Util.Stats.fraction_le samples 2.);
  check_float "none" 0. (Util.Stats.fraction_le samples 0.5);
  check_float "all" 1. (Util.Stats.fraction_le samples 4.)

let test_stats_histogram () =
  let samples = [| 0.; 0.1; 0.9; 1. |] in
  let h = Util.Stats.histogram samples ~bins:2 in
  Alcotest.(check int) "total" 4 (Array.fold_left ( + ) 0 h.Util.Stats.counts);
  Alcotest.(check int) "low bin" 2 h.Util.Stats.counts.(0)

(* ---- Table ------------------------------------------------------------------ *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  scan 0

let test_table_render () =
  let t = Util.Table.create ~header:[ "name"; "value" ] in
  Util.Table.set_align t 1 Util.Table.Right;
  Util.Table.add_row t [ "alpha"; "1.0" ];
  Util.Table.add_row t [ "b"; "22.5" ];
  let s = Util.Table.to_string t in
  Alcotest.(check bool) "contains header" true (contains s "name");
  Alcotest.(check bool) "right aligned" true (contains s " 1.0 |")

let test_table_pad_and_errors () =
  let t = Util.Table.create ~header:[ "a"; "b"; "c" ] in
  Util.Table.add_row t [ "x" ];
  Alcotest.check_raises "too many cells"
    (Invalid_argument "Table.add_row: more cells than columns") (fun () ->
      Util.Table.add_row t [ "1"; "2"; "3"; "4" ]);
  let s = Util.Table.to_string t in
  Alcotest.(check bool) "renders padded row" true (String.length s > 0)

let test_fmt_float () =
  Alcotest.(check string) "default" "1.23" (Util.Table.fmt_float 1.234);
  Alcotest.(check string) "decimals" "1.2340" (Util.Table.fmt_float ~decimals:4 1.234)

(* ---- Guard budgets (injectable clock) ----------------------------------------- *)

(* Deadlines on a hand-driven clock: expiry is exact at the nanosecond,
   tick raises past it, remaining time clamps at zero. *)
let test_guard_injected_clock () =
  let clock = ref 0 in
  let b = Util.Guard.budget ~now:(fun () -> !clock) ~deadline:1.0 () in
  Alcotest.(check bool)
    "fresh budget live" true
    (Util.Guard.exhausted b = None);
  clock := 999_999_999;
  Alcotest.(check bool) "1 ns inside" true (Util.Guard.exhausted b = None);
  (match Util.Guard.remaining_seconds b with
  | Some s -> check_float ~eps:1e-15 "1 ns left" 1e-9 s
  | None -> Alcotest.fail "deadline budget reports no remaining time");
  clock := 1_000_000_001;
  Alcotest.(check bool)
    "1 ns past" true
    (Util.Guard.exhausted b = Some Util.Guard.Deadline);
  (match Util.Guard.remaining_seconds b with
  | Some s -> check_float "clamped at zero" 0. s
  | None -> Alcotest.fail "deadline budget reports no remaining time");
  Alcotest.check_raises "tick raises past the deadline"
    (Util.Guard.Out_of_budget Util.Guard.Deadline) (fun () ->
      Util.Guard.tick b)

(* The default clock source is monotonic: readings never decrease, so a
   budget can never be resurrected by a wall-clock step. *)
let test_guard_monotonic_now () =
  let prev = ref (Util.Guard.monotonic_now ()) in
  for _ = 1 to 1000 do
    let t = Util.Guard.monotonic_now () in
    if t < !prev then
      Alcotest.failf "monotonic clock went backwards: %d -> %d" !prev t;
    prev := t
  done

(* ---- Numerics ----------------------------------------------------------------- *)

let test_clamp () =
  check_float "below" 1. (Util.Numerics.clamp ~lo:1. ~hi:3. 0.);
  check_float "above" 3. (Util.Numerics.clamp ~lo:1. ~hi:3. 7.);
  check_float "inside" 2. (Util.Numerics.clamp ~lo:1. ~hi:3. 2.)

let test_linspace () =
  let a = Util.Numerics.linspace 0. 1. 5 in
  Alcotest.(check int) "length" 5 (Array.length a);
  check_float "first" 0. a.(0);
  check_float "last" 1. a.(4);
  check_float "step" 0.25 a.(1)

let test_fd_gradient_quadratic () =
  let f x = (x.(0) *. x.(0)) +. (3. *. x.(1)) in
  let g = Util.Numerics.fd_gradient f [| 2.; 5. |] in
  check_float ~eps:1e-6 "d/dx0" 4. g.(0);
  check_float ~eps:1e-6 "d/dx1" 3. g.(1)

let test_dot_norms_axpy () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  check_float "dot" 32. (Util.Numerics.dot a b);
  check_float "norm2" (sqrt 14.) (Util.Numerics.norm2 a);
  check_float "norm_inf" 3. (Util.Numerics.norm_inf a);
  let y = Array.copy b in
  Util.Numerics.axpy 2. a y;
  Alcotest.(check (array (float 1e-12))) "axpy" [| 6.; 9.; 12. |] y

let test_kahan_sum () =
  let a = Array.make 10_000 0.1 in
  check_float ~eps:1e-9 "sum" 1000. (Util.Numerics.sum a)

let test_approx_eq () =
  Alcotest.(check bool) "close" true (Util.Numerics.approx_eq 1. (1. +. 1e-12));
  Alcotest.(check bool) "far" false (Util.Numerics.approx_eq 1. 1.1)

let () =
  let q = Seed_info.to_alcotest in
  Alcotest.run "util"
    [
      ( "special",
        [
          Alcotest.test_case "erf known values" `Quick test_erf_known_values;
          Alcotest.test_case "erfc known values" `Quick test_erfc_known_values;
          Alcotest.test_case "erf+erfc = 1" `Quick test_erf_erfc_consistency;
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
          Alcotest.test_case "normal pdf" `Quick test_normal_pdf;
          Alcotest.test_case "ppf roundtrip" `Quick test_normal_ppf_roundtrip;
          Alcotest.test_case "ppf invalid" `Quick test_normal_ppf_invalid;
          Alcotest.test_case "log cdf" `Quick test_log_normal_cdf;
          q prop_erf_monotone;
          q prop_cdf_bounds;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniform moments" `Quick test_rng_uniform_mean;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "int buckets" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "welford vs direct" `Quick test_stats_welford_vs_direct;
          Alcotest.test_case "empty and single" `Quick test_stats_empty_and_single;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "fraction_le" `Quick test_stats_fraction_le;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "padding and errors" `Quick test_table_pad_and_errors;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
        ] );
      ( "guard",
        [
          Alcotest.test_case "injected clock" `Quick test_guard_injected_clock;
          Alcotest.test_case "monotonic clock source" `Quick
            test_guard_monotonic_now;
        ] );
      ( "numerics",
        [
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "linspace" `Quick test_linspace;
          Alcotest.test_case "fd gradient" `Quick test_fd_gradient_quadratic;
          Alcotest.test_case "dot/norms/axpy" `Quick test_dot_norms_axpy;
          Alcotest.test_case "kahan sum" `Quick test_kahan_sum;
          Alcotest.test_case "approx_eq" `Quick test_approx_eq;
        ] );
    ]
