(* Differential tests for the incremental SSTA engine (Sta.Incr).

   The headline harness drives randomized sparse size-delta sequences
   over generated and .bench netlists and asserts that, in exact mode,
   the incremental engine is bit-identical to a from-scratch Ssta
   analysis at every step — values and gradients — at 1, 2 and 4
   domains.  Further groups cover cache-hit/cutoff accounting, epsilon
   mode, wholesale invalidation, and the solver-facing invalidation
   edges (recovery-ladder restart, fault-injected breakdown, objective
   switch on a reused engine). *)

open Circuit

let model = Sigma_model.paper_default

(* Long-lived pools shared across tests (spawning is the expensive part). *)
let pool2 = Util.Pool.create ~jobs:2 ()
let pool4 = Util.Pool.create ~jobs:4 ()
let pools = [ (1, None); (2, Some pool2); (4, Some pool4) ]

(* ---- bit-level comparison helpers ------------------------------------------- *)

let bits = Int64.bits_of_float

let check_normal_identical msg (a : Statdelay.Normal.t) (b : Statdelay.Normal.t) =
  if
    not
      (Int64.equal (bits a.Statdelay.Normal.mu) (bits b.Statdelay.Normal.mu)
      && Int64.equal (bits a.Statdelay.Normal.var) (bits b.Statdelay.Normal.var))
  then
    Alcotest.failf "%s: (%h, %h) <> (%h, %h)" msg a.Statdelay.Normal.mu
      a.Statdelay.Normal.var b.Statdelay.Normal.mu b.Statdelay.Normal.var

let check_floats_identical msg (a : float array) (b : float array) =
  Alcotest.(check int) (msg ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits b.(i))) then
        Alcotest.failf "%s: slot %d: %h <> %h" msg i x b.(i))
    a

let check_results_identical msg (a : Sta.Ssta.result) (b : Sta.Ssta.result) =
  check_normal_identical (msg ^ ": circuit") a.Sta.Ssta.circuit b.Sta.Ssta.circuit;
  Array.iteri
    (fun i x -> check_normal_identical (msg ^ ": arrival") x b.Sta.Ssta.arrival.(i))
    a.Sta.Ssta.arrival;
  Array.iteri
    (fun i x ->
      check_normal_identical (msg ^ ": gate_delay") x b.Sta.Ssta.gate_delay.(i))
    a.Sta.Ssta.gate_delay;
  check_floats_identical (msg ^ ": loads") a.Sta.Ssta.loads b.Sta.Ssta.loads

(* ---- circuits under test ---------------------------------------------------- *)

let wide_dag ?(n_gates = 300) seed =
  Generate.random_dag
    {
      Generate.default_spec with
      Generate.n_gates;
      n_pis = 30;
      target_depth = 8;
      seed;
    }

(* examples/cla4.bench is a test/dune dep; `dune runtest` runs from the
   test build directory, a manual `dune exec` from the project root. *)
let bench_net =
  lazy
    (let path =
       match
         List.find_opt Sys.file_exists
           [ "../examples/cla4.bench"; "examples/cla4.bench" ]
       with
       | Some p -> p
       | None -> Alcotest.fail "examples/cla4.bench not found (is it a test dep?)"
     in
     match Bench_format.parse_file ~library:(Cell.Library.default ()) path with
     | Ok net -> net
     | Error e ->
         Alcotest.failf "cla4.bench: %s" (Format.asprintf "%a" Bench_format.pp_error e))

let nets_under_test () =
  [
    ("cla4.bench", Lazy.force bench_net);
    ("apex2*", Generate.apex2_like ());
    ("dag300", wide_dag 7);
  ]

(* ---- the differential harness ----------------------------------------------- *)

let basis_mu _ = { Sta.Ssta.d_mu = 1.; d_var = 0. }
let basis_var _ = { Sta.Ssta.d_mu = 0.; d_var = 1. }

(* The randomized driver is the shared simulation harness (lib/sim): a
   keyed-seed op sequence of sparse batch resizes, forward-only
   analyzes and gradient queries (rotating over the mu / var / mu+3sigma
   seed roots, as the bespoke driver here used to), with the invariant
   suite — incremental vs scratch vs boxed vs pooled, bitwise — run
   after every op.  Cache-hit coverage comes for free: each invariant
   check re-analyzes the unchanged point. *)
let diff_weights =
  {
    Sim.Gen.zero_weights with
    Sim.Gen.batch_resize = 40;
    resize = 10;
    analyze = 20;
    gradient = 30;
  }

(* Run a [steps]-op generated sequence on [net] under the full invariant
   suite, failing the test on the first violation.  Returns the
   engine-under-test's counters so callers can assert caching engaged. *)
let run_differential ?(jobs = 1) ?pool ~steps ~seed name net =
  let config = { Sim.Gen.default with Sim.Gen.n_ops = steps; weights = diff_weights } in
  let ops = Sim.Gen.sequence ~net ~seed config in
  let pools = match pool with None -> [] | Some p -> [ (jobs, p) ] in
  let report = Sim.Harness.run_net ~pools ?incr_pool:pool ~seed net ops in
  (match report.Sim.Harness.outcome with
  | Sim.Harness.Passed -> ()
  | Sim.Harness.Failed f ->
      Alcotest.failf
        "%s: invariant %S violated at op %d (%s)\n  %s\n  reproduce: seed %d, %d ops"
        name f.Sim.Harness.violation.Sim.Invariant.name f.Sim.Harness.step
        (Sim.Op.to_line f.Sim.Harness.op)
        f.Sim.Harness.violation.Sim.Invariant.detail seed steps);
  report.Sim.Harness.counters

let test_differential_all_circuits () =
  List.iter
    (fun (name, net) ->
      List.iter
        (fun (jobs, pool) ->
          let name = Printf.sprintf "%s jobs=%d" name jobs in
          let c = run_differential ~jobs ?pool ~steps:25 ~seed:(17 * jobs) name net in
          Alcotest.(check int) (name ^ ": one full sweep") 1 c.Sta.Incr.full_sweeps;
          Alcotest.(check bool)
            (name ^ ": cache hits happened")
            true
            (c.Sta.Incr.cache_hits > 0))
        pools)
    (nets_under_test ())

(* The re-sent-sizes steps must hit the cache without drifting, and the
   sparse deltas must keep the mean re-evaluated fraction below a full
   sweep per analyze. *)
let test_dirty_fraction_below_one () =
  let net = wide_dag ~n_gates:400 11 in
  let c = run_differential ~steps:40 ~seed:3 "dag400" net in
  let eng_fraction =
    float_of_int c.Sta.Incr.gates_reevaluated
    /. (float_of_int c.Sta.Incr.analyzes *. float_of_int (Netlist.n_gates net))
  in
  Alcotest.(check bool) "fraction < 1" true (eng_fraction < 1.)

(* Phase-1 reuse needs bitwise-equal adjoints, which a sparse delta
   rarely preserves (any moved PO arrival perturbs the PO fold partials
   globally); the guaranteed case is re-differentiating an unchanged
   point with the same seed root. *)
let test_phase1_reuse_on_repeated_point () =
  let net = Generate.apex2_like () in
  let eng = Sta.Incr.create ~model net in
  let sizes = Netlist.min_sizes net in
  let _, g1 = Sta.Incr.value_and_gradient eng ~sizes ~seed:basis_mu in
  let c1 = Sta.Incr.counters eng in
  Alcotest.(check int) "first call recomputes" 0 c1.Sta.Incr.phase1_reused;
  let _, g2 = Sta.Incr.value_and_gradient eng ~sizes ~seed:basis_mu in
  let c2 = Sta.Incr.counters eng in
  check_floats_identical "repeat grad" g1 g2;
  Alcotest.(check int) "second call reuses everything"
    c1.Sta.Incr.phase1_recomputed c2.Sta.Incr.phase1_reused;
  Alcotest.(check int) "nothing recomputed on repeat" c1.Sta.Incr.phase1_recomputed
    c2.Sta.Incr.phase1_recomputed;
  (* A different seed root gets its own slot: no cross-talk, still exact. *)
  let g_var = Sta.Incr.gradient eng ~sizes ~seed:basis_var in
  let g_var_ref = Sta.Ssta.gradient ~model net ~sizes ~seed:basis_var in
  check_floats_identical "other-root grad" g_var_ref g_var

let prop_random_dag_differential =
  QCheck.Test.make ~name:"incremental bit-identical on random netlists" ~count:8
    (QCheck.make QCheck.Gen.(pair (int_range 0 10_000) (int_range 80 400)))
    (fun (seed, n_gates) ->
      let net = wide_dag ~n_gates (seed + 1) in
      let c = run_differential ~steps:12 ~seed:(seed + 13) "qcheck" net in
      c.Sta.Incr.analyzes >= 12)

(* ---- cache accounting ------------------------------------------------------- *)

let test_cache_hit_on_identical_sizes () =
  let net = Generate.apex2_like () in
  let eng = Sta.Incr.create ~model net in
  let sizes = Netlist.min_sizes net in
  ignore (Sta.Incr.analyze eng ~sizes);
  ignore (Sta.Incr.analyze eng ~sizes);
  ignore (Sta.Incr.analyze eng ~sizes:(Array.copy sizes));
  let c = Sta.Incr.counters eng in
  Alcotest.(check int) "analyzes" 3 c.Sta.Incr.analyzes;
  Alcotest.(check int) "full sweeps" 1 c.Sta.Incr.full_sweeps;
  Alcotest.(check int) "cache hits" 2 c.Sta.Incr.cache_hits;
  Alcotest.(check int) "reevaluated = n" (Netlist.n_gates net)
    c.Sta.Incr.gates_reevaluated

let test_single_gate_delta_touches_cone_only () =
  (* On a chain, changing the size of gate k re-evaluates its driver
     (load change), itself, and — the chain being a single path with no
     cutoff slack — its fan-out suffix; never the prefix before the
     driver. *)
  let net = Generate.chain ~length:60 () in
  let n = Netlist.n_gates net in
  let eng = Sta.Incr.create ~model net in
  let sizes = Array.copy (Netlist.min_sizes net) in
  ignore (Sta.Incr.analyze eng ~sizes);
  let k = 40 in
  sizes.(k) <- 2.5;
  let reference = Sta.Ssta.analyze ~model net ~sizes in
  let incremental = Sta.Incr.analyze eng ~sizes in
  check_results_identical "chain delta" reference incremental;
  let c = Sta.Incr.counters eng in
  let cone = n - k + 1 (* driver k-1, gate k, suffix k+1 .. n-1 *) in
  Alcotest.(check bool)
    (Printf.sprintf "reevaluated %d <= cone %d"
       (c.Sta.Incr.gates_reevaluated - n) cone)
    true
    (c.Sta.Incr.gates_reevaluated - n <= cone)

let test_invalidate_forces_full_sweep () =
  let net = Generate.apex2_like () in
  let eng = Sta.Incr.create ~model net in
  let sizes = Netlist.min_sizes net in
  ignore (Sta.Incr.analyze eng ~sizes);
  Sta.Incr.invalidate eng;
  let reference = Sta.Ssta.analyze ~model net ~sizes in
  let incremental = Sta.Incr.analyze eng ~sizes in
  check_results_identical "post-invalidate" reference incremental;
  let c = Sta.Incr.counters eng in
  Alcotest.(check int) "full sweeps" 2 c.Sta.Incr.full_sweeps;
  Alcotest.(check int) "cache hits" 0 c.Sta.Incr.cache_hits

(* ---- epsilon mode ----------------------------------------------------------- *)

(* Sparse size deltas for the epsilon test, drawn from the shared op
   generator (batch-resize class only — the epsilon engine is driven
   directly here, outside the exact-mode harness). *)
let sparse_delta ~net ~seed ~step sizes =
  let config =
    {
      Sim.Gen.default with
      Sim.Gen.weights = { Sim.Gen.zero_weights with Sim.Gen.batch_resize = 1 };
    }
  in
  match Sim.Gen.op ~net ~seed ~key:step config with
  | Sim.Op.Batch_resize pairs -> Array.iter (fun (g, s) -> sizes.(g) <- s) pairs
  | _ -> ()

let test_epsilon_mode_bounded_drift () =
  let net = wide_dag ~n_gates:300 19 in
  let eps = 1e-9 in
  let eng = Sta.Incr.create ~mode:(Sta.Incr.Epsilon eps) ~model net in
  let sizes = Array.copy (Netlist.min_sizes net) in
  (* Relative drift is bounded by roughly eps per gate per step along a
     path, so depth * steps * eps with slack is a safe envelope. *)
  let tol = eps *. float_of_int (Netlist.depth net * 30) *. 1e3 in
  for step = 1 to 30 do
    sparse_delta ~net ~seed:5 ~step sizes;
    let reference = Sta.Ssta.analyze ~model net ~sizes in
    let approx = Sta.Incr.analyze eng ~sizes in
    let rel a b = abs_float (a -. b) /. (1. +. abs_float b) in
    let dmu =
      rel
        (Statdelay.Normal.mu approx.Sta.Ssta.circuit)
        (Statdelay.Normal.mu reference.Sta.Ssta.circuit)
    and dsig =
      rel
        (Statdelay.Normal.sigma approx.Sta.Ssta.circuit)
        (Statdelay.Normal.sigma reference.Sta.Ssta.circuit)
    in
    if dmu > tol || dsig > tol then
      Alcotest.failf "epsilon drift step %d: dmu=%g dsig=%g > %g" step dmu dsig tol
  done

(* ---- solver integration: invalidation edges --------------------------------- *)

(* A bounded-area problem that forces real solver work (the all-min
   start violates the delay bound). *)
let bounded_setup () =
  let net = Generate.tree () in
  let unsized, _ =
    Sizing.Engine.evaluate ~model net ~sizes:(Netlist.min_sizes net)
  in
  let bound = 0.9 *. Statdelay.Normal.mu unsized.Sta.Ssta.circuit in
  (net, Sizing.Objective.Min_area_bounded { k = 0.; bound })

let test_engine_incremental_bit_identical () =
  (* The whole solver trajectory — thousands of evaluations — must not
     move by a bit when evaluations go through the incremental engine. *)
  let net = wide_dag ~n_gates:150 41 in
  let solve incremental =
    Sizing.Engine.solve
      ~options:{ Sizing.Engine.default_options with Sizing.Engine.incremental }
      ~model net (Sizing.Objective.Min_delay 3.)
  in
  let full = solve false and inc = solve true in
  check_floats_identical "sizes" full.Sizing.Engine.sizes inc.Sizing.Engine.sizes;
  check_normal_identical "circuit" full.Sizing.Engine.timing.Sta.Ssta.circuit
    inc.Sizing.Engine.timing.Sta.Ssta.circuit;
  Alcotest.(check int) "same evaluation count" full.Sizing.Engine.evaluations
    inc.Sizing.Engine.evaluations

let test_objective_switch_forces_full_sweep () =
  let net, bounded = bounded_setup () in
  let eng = Sta.Incr.create ~model net in
  let s1 = Sizing.Engine.solve ~timing:eng ~model net (Sizing.Objective.Min_delay 0.) in
  let sweeps_after_first = (Sta.Incr.counters eng).Sta.Incr.full_sweeps in
  Alcotest.(check bool) "first solve swept" true (sweeps_after_first >= 1);
  (* Same engine, different objective: the first attempt must not trust
     the previous objective's cached trajectory. *)
  let s2 = Sizing.Engine.solve ~timing:eng ~model net bounded in
  let c = Sta.Incr.counters eng in
  Alcotest.(check bool) "objective switch swept again" true
    (c.Sta.Incr.full_sweeps > sweeps_after_first);
  Alcotest.(check bool) "solves usable" true
    (s1.Sizing.Engine.converged && s2.Sizing.Engine.converged);
  (* And the shared-engine solve matches a fresh from-scratch solve. *)
  let fresh = Sizing.Engine.solve ~model net bounded in
  check_floats_identical "shared-engine sizes" fresh.Sizing.Engine.sizes
    s2.Sizing.Engine.sizes

let test_multistart_restarts_invalidate () =
  let net, bounded = bounded_setup () in
  let eng = Sta.Incr.create ~model net in
  let options = { Sizing.Engine.default_options with Sizing.Engine.restarts = 2 } in
  let _ = Sizing.Engine.solve ~options ~timing:eng ~model net bounded in
  let c = Sta.Incr.counters eng in
  (* initial + 2 restarts, each from an invalidated cache *)
  Alcotest.(check bool)
    (Printf.sprintf "full sweeps %d >= attempts 3" c.Sta.Incr.full_sweeps)
    true
    (c.Sta.Incr.full_sweeps >= 3)

let test_fault_recovery_invalidates () =
  (* A NaN injected into the first objective evaluation makes the initial
     attempt break down; every recovery rung the ladder then climbs must
     start from a wholesale-invalidated timing cache. *)
  let net, bounded = bounded_setup () in
  let eng = Sta.Incr.create ~model net in
  let plan =
    Util.Fault.plan
      [
        {
          Util.Fault.kind = Util.Fault.Nan_value;
          Util.Fault.component = Some 0;
          Util.Fault.trigger = Util.Fault.First 1;
        };
      ]
  in
  let inject problem =
    Nlp.Problem.map_components
      (fun ~component f ->
        Util.Fault.wrap plan ~component:(Nlp.Problem.component_index component) f)
      problem
  in
  let s =
    Sizing.Engine.solve
      ~options:
        { Sizing.Engine.default_options with Sizing.Engine.instrument = Some inject }
      ~timing:eng ~model net bounded
  in
  let attempts = 1 + List.length s.Sizing.Engine.recovery in
  let c = Sta.Incr.counters eng in
  Alcotest.(check bool) "recovery engaged" true (s.Sizing.Engine.recovery <> []);
  Alcotest.(check bool)
    (Printf.sprintf "full sweeps %d >= solver attempts" c.Sta.Incr.full_sweeps)
    true
    (c.Sta.Incr.full_sweeps >= min attempts 2)

let test_full_sweep_instr_counter () =
  (* The invalidation edges are also observable through the global
     incr.full_sweep counter (what statsize --profile reports). *)
  Util.Instr.reset ();
  Util.Instr.enable ();
  Fun.protect
    ~finally:(fun () ->
      Util.Instr.disable ();
      Util.Instr.reset ())
    (fun () ->
      let net, bounded = bounded_setup () in
      let eng = Sta.Incr.create ~model net in
      let _ = Sizing.Engine.solve ~timing:eng ~model net bounded in
      let _ = Sizing.Engine.solve ~timing:eng ~model net (Sizing.Objective.Min_delay 0.) in
      let snap = Util.Instr.snapshot () in
      let count name =
        match List.assoc_opt name snap.Util.Instr.counters with Some n -> n | None -> 0
      in
      Alcotest.(check bool) "incr.full_sweep >= 2" true (count "incr.full_sweep" >= 2);
      Alcotest.(check bool) "incr.analyze counted" true (count "incr.analyze" > 0);
      Alcotest.(check bool) "cutoffs or cache hits observed" true
        (count "incr.cache_hit" + count "incr.cutoff" > 0))

let test_timing_engine_netlist_mismatch () =
  let eng = Sta.Incr.create ~model (Generate.tree ()) in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Engine.solve: timing engine bound to a different netlist")
    (fun () ->
      ignore
        (Sizing.Engine.solve ~timing:eng ~model (Generate.chain ~length:5 ())
           (Sizing.Objective.Min_delay 0.)))

let test_epsilon_rejects_negative () =
  Alcotest.check_raises "negative eps"
    (Invalid_argument "Incr.create: epsilon must be >= 0") (fun () ->
      ignore (Sta.Incr.create ~mode:(Sta.Incr.Epsilon (-1.)) ~model (Generate.tree ())))

let () =
  let open Alcotest in
  run "incr"
    [
      ( "differential",
        [
          test_case "all circuits x 1/2/4 domains" `Quick test_differential_all_circuits;
          test_case "dirty fraction < 1" `Quick test_dirty_fraction_below_one;
          test_case "phase-1 reuse on repeated point" `Quick
            test_phase1_reuse_on_repeated_point;
          Seed_info.to_alcotest prop_random_dag_differential;
        ] );
      ( "cache",
        [
          test_case "hit on identical sizes" `Quick test_cache_hit_on_identical_sizes;
          test_case "single-gate delta cone" `Quick test_single_gate_delta_touches_cone_only;
          test_case "invalidate" `Quick test_invalidate_forces_full_sweep;
        ] );
      ( "epsilon",
        [
          test_case "bounded drift" `Quick test_epsilon_mode_bounded_drift;
          test_case "invalid eps" `Quick test_epsilon_rejects_negative;
        ] );
      ( "engine",
        [
          test_case "incremental solve bit-identical" `Quick
            test_engine_incremental_bit_identical;
          test_case "objective switch invalidates" `Quick
            test_objective_switch_forces_full_sweep;
          test_case "multi-start restarts invalidate" `Quick
            test_multistart_restarts_invalidate;
          test_case "fault recovery invalidates" `Quick test_fault_recovery_invalidates;
          test_case "incr.full_sweep counter" `Quick test_full_sweep_instr_counter;
          test_case "netlist mismatch rejected" `Quick
            test_timing_engine_netlist_mismatch;
        ] );
    ]
