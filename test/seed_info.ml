(* Shared seed discipline for the randomized (QCheck) test cases.

   One process-wide seed — QCHECK_SEED when set, fresh otherwise —
   drives every property in the executable, announced once on first
   use.  The wrapper around QCheck_alcotest.to_alcotest re-raises test
   failures with the exact seed and a copy-pasteable repro command
   appended, so a red CI log is always one paste away from a local
   reproduction (the sim-harness tests print `statsize sim` commands
   the same way). *)

let seed =
  lazy
    (let s =
       match Sys.getenv_opt "QCHECK_SEED" with
       | Some v -> (
           match int_of_string_opt (String.trim v) with
           | Some n -> n
           | None ->
               Printf.eprintf "seed_info: ignoring unparseable QCHECK_SEED=%S\n" v;
               Random.self_init ();
               Random.int 0x3FFFFFFF)
       | None ->
           Random.self_init ();
           Random.int 0x3FFFFFFF
     in
     Printf.printf "qcheck random seed: %d (pin with QCHECK_SEED=%d)\n%!" s s;
     s)

let repro_command () =
  let exe = Filename.remove_extension (Filename.basename Sys.executable_name) in
  Printf.sprintf "QCHECK_SEED=%d dune exec test/%s.exe" (Lazy.force seed) exe

let to_alcotest ?speed_level test =
  let rand = Random.State.make [| Lazy.force seed |] in
  let name, speed, run = QCheck_alcotest.to_alcotest ?speed_level ~rand test in
  let run arg =
    try run arg
    with e ->
      Printf.printf "property %S failed under seed %d\n  reproduce: %s\n%!" name
        (Lazy.force seed) (repro_command ());
      raise e
  in
  (name, speed, run)
