(* Tests for the circuit substrate: cells, sigma models, netlists, BLIF and
   generators. *)

open Circuit

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

(* ---- Cell ------------------------------------------------------------------ *)

let test_cell_make_defaults () =
  let c = Cell.make ~name:"x" ~n_inputs:2 () in
  check_float "t_int" 0.1 c.Cell.t_int;
  check_float "max" 3. c.Cell.max_size;
  Alcotest.(check int) "inputs" 2 c.Cell.n_inputs

let test_cell_validation () =
  Alcotest.check_raises "zero inputs"
    (Invalid_argument "Cell.make: n_inputs must be positive") (fun () ->
      ignore (Cell.make ~name:"x" ~n_inputs:0 ()));
  Alcotest.check_raises "bad limit"
    (Invalid_argument "Cell.make: max_size must be >= 1") (fun () ->
      ignore (Cell.make ~name:"x" ~n_inputs:1 ~max_size:0.5 ()))

let test_cell_delay_formula () =
  let c = Cell.make ~name:"x" ~n_inputs:1 ~t_int:0.2 ~drive:2. ()in
  check_float "delay S=1" (0.2 +. (2. *. 1.5)) (Cell.delay c ~size:1. ~load:1.5);
  check_float "delay S=3" (0.2 +. (2. *. 1.5 /. 3.)) (Cell.delay c ~size:3. ~load:1.5);
  Alcotest.check_raises "size below 1" (Invalid_argument "Cell.delay: size below 1")
    (fun () -> ignore (Cell.delay c ~size:0.5 ~load:1.))

let test_cell_delay_decreasing_in_size () =
  let c = Cell.nand 2 in
  let d1 = Cell.delay c ~size:1. ~load:2. in
  let d2 = Cell.delay c ~size:2. ~load:2. in
  let d3 = Cell.delay c ~size:3. ~load:2. in
  Alcotest.(check bool) "monotone" true (d1 > d2 && d2 > d3);
  Alcotest.(check bool) "floor at t_int" true (d3 > c.Cell.t_int)

let test_cell_input_cap_scales () =
  let c = Cell.nand 2 in
  check_float "cap scales linearly" (2. *. Cell.input_cap c ~size:1.)
    (Cell.input_cap c ~size:2.)

let test_library_lookup () =
  let lib = Cell.Library.default () in
  (match Cell.Library.find lib "nand2" with
  | Some c -> Alcotest.(check int) "nand2 inputs" 2 c.Cell.n_inputs
  | None -> Alcotest.fail "nand2 missing");
  Alcotest.(check bool) "unknown" true (Cell.Library.find lib "zzz" = None);
  Alcotest.check_raises "find_exn" (Invalid_argument
    "Cell.Library.find_exn: unknown cell zzz") (fun () ->
      ignore (Cell.Library.find_exn lib "zzz"))

let test_library_best_fit () =
  let lib = Cell.Library.default () in
  Alcotest.(check int) "fit 3" 3 (Cell.Library.best_fit lib ~n_inputs:3).Cell.n_inputs;
  Alcotest.(check int) "fit 1" 1 (Cell.Library.best_fit lib ~n_inputs:1).Cell.n_inputs;
  Alcotest.check_raises "fit 9"
    (Invalid_argument "Cell.Library.best_fit: no cell with enough inputs") (fun () ->
      ignore (Cell.Library.best_fit lib ~n_inputs:9))

let test_library_duplicate_rejected () =
  Alcotest.check_raises "dup" (Invalid_argument "Cell.Library.of_list: duplicate cell inv")
    (fun () ->
      ignore
        (Cell.Library.of_list
           [
             Cell.make ~name:"inv" ~n_inputs:1 ();
             Cell.make ~name:"inv" ~n_inputs:1 ();
           ]))

(* ---- Sigma model ------------------------------------------------------------ *)

let test_sigma_models () =
  check_float "zero" 0. (Sigma_model.sigma Sigma_model.Zero 5.);
  check_float "proportional" 1.25 (Sigma_model.sigma (Sigma_model.Proportional 0.25) 5.);
  check_float "affine" 0.6
    (Sigma_model.sigma (Sigma_model.Affine { base = 0.1; ratio = 0.1 }) 5.);
  check_float "constant" 0.3 (Sigma_model.sigma (Sigma_model.Constant 0.3) 5.);
  check_float "var" (1.25 *. 1.25)
    (Sigma_model.var (Sigma_model.Proportional 0.25) 5.)

let test_sigma_model_derivative_fd () =
  let models =
    [
      Sigma_model.Zero;
      Sigma_model.Proportional 0.25;
      Sigma_model.Affine { base = 0.2; ratio = 0.1 };
      Sigma_model.Constant 0.4;
    ]
  in
  List.iter
    (fun m ->
      List.iter
        (fun mu ->
          let h = 1e-6 in
          let fd = (Sigma_model.var m (mu +. h) -. Sigma_model.var m (mu -. h)) /. (2. *. h) in
          if not (Util.Numerics.approx_eq ~rtol:1e-6 ~atol:1e-9 fd (Sigma_model.dvar_dmu m mu))
          then
            Alcotest.failf "dvar_dmu mismatch for %s at mu=%g" (Sigma_model.to_string m) mu)
        [ 0.5; 2.; 10. ])
    models

(* ---- Netlist builder --------------------------------------------------------- *)

let nand2 = Cell.nand 2
let inv = Cell.make ~name:"inv" ~n_inputs:1 ~c_in:0.18 ()

let small_net () =
  let b = Netlist.Builder.create ~name:"small" () in
  let a = Netlist.Builder.add_pi b "a" in
  let c = Netlist.Builder.add_pi b "c" in
  let g0 = Netlist.Builder.add_gate b ~name:"g0" ~cell:nand2 [ a; c ] in
  let g1 = Netlist.Builder.add_gate b ~name:"g1" ~cell:inv [ g0 ] in
  Netlist.Builder.mark_po b g1;
  Netlist.Builder.build b

let test_builder_basic () =
  let n = small_net () in
  Alcotest.(check int) "gates" 2 (Netlist.n_gates n);
  Alcotest.(check int) "pis" 2 (Netlist.n_pis n);
  Alcotest.(check int) "pos" 1 (Netlist.n_pos n);
  Alcotest.(check string) "pi name" "a" (Netlist.pi_name n 0);
  Alcotest.(check string) "gate name" "g1" (Netlist.gate n 1).Netlist.gate_name

let test_builder_duplicate_pi () =
  let b = Netlist.Builder.create () in
  ignore (Netlist.Builder.add_pi b "a");
  Alcotest.check_raises "dup pi" (Invalid_argument "Netlist.Builder.add_pi: duplicate input a")
    (fun () -> ignore (Netlist.Builder.add_pi b "a"))

let test_builder_fanin_count_checked () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_pi b "a" in
  Alcotest.check_raises "wrong fanin"
    (Invalid_argument "Netlist.Builder.add_gate: cell nand2 expects 2 inputs, got 1")
    (fun () -> ignore (Netlist.Builder.add_gate b ~cell:nand2 [ a ]))

let test_builder_no_po_rejected () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_pi b "a" in
  ignore (Netlist.Builder.add_gate b ~cell:inv [ a ]);
  Alcotest.check_raises "no po"
    (Invalid_argument "Netlist.Builder.build: no primary output") (fun () ->
      ignore (Netlist.Builder.build b))

let test_builder_dangling_fanin_rejected () =
  let b = Netlist.Builder.create () in
  Alcotest.check_raises "dangling"
    (Invalid_argument "Netlist.Builder.add_gate: fanin node does not exist") (fun () ->
      ignore (Netlist.Builder.add_gate b ~cell:inv [ Netlist.Pi 5 ]))

let test_fanout_and_multiplicity () =
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_pi b "a" in
  let g0 = Netlist.Builder.add_gate b ~cell:inv [ a ] in
  (* g1 consumes g0 on both pins: multiplicity 2. *)
  let g1 = Netlist.Builder.add_gate b ~cell:nand2 [ g0; g0 ] in
  Netlist.Builder.mark_po b g1;
  let n = Netlist.Builder.build b in
  (match Netlist.fanout n 0 with
  | [ (1, 2) ] -> ()
  | other ->
      Alcotest.failf "unexpected fanout: %s"
        (String.concat ";" (List.map (fun (g, m) -> Printf.sprintf "(%d,%d)" g m) other)));
  Alcotest.(check (list (pair int int))) "sink fanout" [] (Netlist.fanout n 1)

let test_load_computation () =
  let n = small_net () in
  let sizes = [| 1.; 2. |] in
  (* g0 drives inv sized 2: load = wire (1.0) + 0.18*2 *)
  check_float "g0 load" (1.0 +. (0.18 *. 2.)) (Netlist.load n ~sizes 0);
  check_float "g1 load" 1.0 (Netlist.load n ~sizes 1)

let test_area_and_size_vectors () =
  let n = small_net () in
  check_float "area at min" 2. (Netlist.area n ~sizes:(Netlist.min_sizes n));
  let maxs = Netlist.max_sizes n in
  check_float "max size" 3. maxs.(0);
  Alcotest.check_raises "bad dim" (Invalid_argument "Netlist.check_sizes: dimension mismatch")
    (fun () -> Netlist.check_sizes n [| 1. |]);
  Alcotest.(check unit) "valid sizes ok" () (Netlist.check_sizes n [| 1.5; 2.9 |])

let test_check_sizes_bounds () =
  let n = small_net () in
  (try
     Netlist.check_sizes n [| 0.5; 1. |];
     Alcotest.fail "should reject size below 1"
   with Invalid_argument _ -> ());
  try
    Netlist.check_sizes n [| 1.; 4. |];
    Alcotest.fail "should reject size above limit"
  with Invalid_argument _ -> ()

let test_levels_depth () =
  let n = small_net () in
  Alcotest.(check (array int)) "levels" [| 1; 2 |] (Netlist.levels n);
  Alcotest.(check int) "depth" 2 (Netlist.depth n);
  let s = Netlist.stats n in
  Alcotest.(check int) "stats depth" 2 s.Netlist.depth;
  Alcotest.(check int) "stats max fanout" 1 s.Netlist.max_fanout

(* ---- Generators ----------------------------------------------------------------- *)

let test_tree_structure () =
  let n = Generate.tree () in
  Alcotest.(check int) "7 gates" 7 (Netlist.n_gates n);
  Alcotest.(check int) "8 pis" 8 (Netlist.n_pis n);
  Alcotest.(check int) "1 po" 1 (Netlist.n_pos n);
  Alcotest.(check int) "depth 3" 3 (Netlist.depth n);
  let names =
    Array.to_list (Array.map (fun (g : Netlist.gate) -> g.Netlist.gate_name) (Netlist.gates n))
  in
  Alcotest.(check (list string)) "paper naming" [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ] names;
  (* C consumes A and B; G consumes C and F. *)
  Alcotest.(check (list (pair int int))) "A feeds C" [ (2, 1) ] (Netlist.fanout n 0);
  Alcotest.(check (list (pair int int))) "C feeds G" [ (6, 1) ] (Netlist.fanout n 2)

let test_tree_levels_param () =
  let n = Generate.tree ~levels:4 () in
  Alcotest.(check int) "15 gates" 15 (Netlist.n_gates n);
  Alcotest.(check int) "16 pis" 16 (Netlist.n_pis n);
  Alcotest.(check int) "depth 4" 4 (Netlist.depth n)

let test_fig2_structure () =
  let n = Generate.example_fig2 () in
  Alcotest.(check int) "4 gates" 4 (Netlist.n_gates n);
  Alcotest.(check int) "3 pis" 3 (Netlist.n_pis n);
  Alcotest.(check int) "2 pos" 2 (Netlist.n_pos n);
  (* D has fanin A, B, C. *)
  let d = Netlist.gate n 3 in
  Alcotest.(check int) "D fanin" 3 (Array.length d.Netlist.fanin);
  (* A, B, C all drive D. *)
  List.iter
    (fun g -> Alcotest.(check (list (pair int int))) "drives D" [ (3, 1) ] (Netlist.fanout n g))
    [ 0; 1; 2 ]

let test_chain_structure () =
  let n = Generate.chain ~length:5 () in
  Alcotest.(check int) "5 gates" 5 (Netlist.n_gates n);
  Alcotest.(check int) "depth 5" 5 (Netlist.depth n);
  Alcotest.(check int) "1 po" 1 (Netlist.n_pos n)

let test_random_dag_counts () =
  let spec = { Generate.default_spec with Generate.n_gates = 150; seed = 3 } in
  let n = Generate.random_dag spec in
  Alcotest.(check int) "gate count exact" 150 (Netlist.n_gates n);
  Alcotest.(check int) "pi count" 20 (Netlist.n_pis n);
  Alcotest.(check int) "depth = target" 12 (Netlist.depth n);
  Alcotest.(check bool) "has pos" true (Netlist.n_pos n > 0)

let test_random_dag_deterministic () =
  let spec = { Generate.default_spec with Generate.n_gates = 80; seed = 5 } in
  let a = Generate.random_dag spec and b = Generate.random_dag spec in
  let sig_of n =
    Array.to_list
      (Array.map
         (fun (g : Netlist.gate) ->
           (g.Netlist.cell.Cell.name, Array.to_list (Array.map (function
             | Netlist.Pi i -> -i - 1
             | Netlist.Gate i -> i) g.Netlist.fanin)))
         (Netlist.gates n))
  in
  Alcotest.(check bool) "same structure" true (sig_of a = sig_of b)

let test_random_dag_all_gates_reach_po () =
  (* Every gate either has a consumer or is a PO: nothing dangles. *)
  let spec = { Generate.default_spec with Generate.n_gates = 120; seed = 9 } in
  let n = Generate.random_dag spec in
  let is_po = Array.make (Netlist.n_gates n) false in
  Array.iter
    (function Netlist.Gate g -> is_po.(g) <- true | Netlist.Pi _ -> ())
    (Netlist.pos n);
  Array.iter
    (fun (g : Netlist.gate) ->
      if Netlist.fanout n g.Netlist.id = [] && not is_po.(g.Netlist.id) then
        Alcotest.failf "gate %d dangles" g.Netlist.id)
    (Netlist.gates n)

let test_benchmark_standins () =
  let apex1 = Generate.apex1_like () in
  Alcotest.(check int) "apex1 cells" 982 (Netlist.n_gates apex1);
  let apex2 = Generate.apex2_like () in
  Alcotest.(check int) "apex2 cells" 117 (Netlist.n_gates apex2);
  Alcotest.(check int) "apex2 pis" 39 (Netlist.n_pis apex2)

let test_by_name () =
  Alcotest.(check bool) "tree" true (Generate.by_name "tree" <> None);
  Alcotest.(check bool) "unknown" true (Generate.by_name "nope" = None)

(* ---- BLIF ------------------------------------------------------------------------ *)

let sample_blif =
  {|# a comment
.model demo
.inputs a b \
 c
.outputs y
.gate nand2 i0=a i1=b O=n1
.gate inv i0=n1 O=n2   # trailing comment
.gate nand2 i0=n2 i1=c O=y
.end
|}

let test_blif_parse () =
  let lib = Cell.Library.default () in
  match Blif.parse_string ~library:lib sample_blif with
  | Error e -> Alcotest.failf "parse failed: %s" (Format.asprintf "%a" Blif.pp_error e)
  | Ok n ->
      Alcotest.(check string) "model name" "demo" (Netlist.name n);
      Alcotest.(check int) "gates" 3 (Netlist.n_gates n);
      Alcotest.(check int) "pis" 3 (Netlist.n_pis n);
      Alcotest.(check int) "pos" 1 (Netlist.n_pos n);
      Alcotest.(check int) "depth" 3 (Netlist.depth n)

let test_blif_out_of_order_gates () =
  (* Gates may appear before their fanins are defined. *)
  let text =
    ".model ooo\n.inputs a\n.outputs y\n.gate inv i0=n1 O=y\n.gate inv i0=a O=n1\n.end\n"
  in
  match Blif.parse_string ~library:(Cell.Library.default ()) text with
  | Error e -> Alcotest.failf "parse failed: %s" (Format.asprintf "%a" Blif.pp_error e)
  | Ok n -> Alcotest.(check int) "gates" 2 (Netlist.n_gates n)

let test_blif_errors () =
  let lib = Cell.Library.default () in
  let expect_error text pattern =
    match Blif.parse_string ~library:lib text with
    | Ok _ -> Alcotest.failf "expected failure for %s" pattern
    | Error e ->
        let msg = Format.asprintf "%a" Blif.pp_error e in
        let contains haystack needle =
          let nh = String.length haystack and nn = String.length needle in
          let rec scan i =
            i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1))
          in
          scan 0
        in
        if not (contains msg pattern) then
          Alcotest.failf "error %S does not mention %S" msg pattern
  in
  expect_error ".model m\n.inputs a\n.outputs y\n.gate zzz i0=a O=y\n.end\n" "unknown cell";
  expect_error ".model m\n.inputs a\n.outputs y\n.gate inv i0=q O=y\n.end\n" "undriven net";
  expect_error
    ".model m\n.inputs a\n.outputs y\n.gate inv i0=a O=y\n.gate inv i0=a O=y\n.end\n"
    "driven twice";
  expect_error ".model m\n.inputs a\n.outputs y\n.gate inv i0=a badpin O=y\n.end\n"
    "malformed pin";
  expect_error ".model m\n.inputs a\n.outputs y\n.unknown\n.end\n" "unsupported directive";
  expect_error
    ".model m\n.inputs a\n.outputs y\n.gate inv i0=n1 O=y\n.gate inv i0=y O=n1\n.end\n"
    "cycle"

let test_blif_roundtrip () =
  let lib =
    Cell.Library.of_list [ Cell.nand 2; Cell.nand 3; Cell.make ~name:"inv" ~n_inputs:1 () ]
  in
  let original = Generate.tree () in
  (* Tree uses its own tuned cell; serialise a library circuit instead. *)
  ignore original;
  let b = Netlist.Builder.create ~name:"rt" () in
  let a = Netlist.Builder.add_pi b "a" in
  let c = Netlist.Builder.add_pi b "c" in
  let g0 = Netlist.Builder.add_gate b ~cell:(Cell.Library.find_exn lib "nand2") [ a; c ] in
  let g1 = Netlist.Builder.add_gate b ~cell:(Cell.Library.find_exn lib "inv") [ g0 ] in
  let g2 =
    Netlist.Builder.add_gate b ~cell:(Cell.Library.find_exn lib "nand3") [ g0; g1; c ]
  in
  Netlist.Builder.mark_po b g2;
  let n = Netlist.Builder.build b in
  let text = Blif.to_string n in
  match Blif.parse_string ~library:lib text with
  | Error e -> Alcotest.failf "reparse failed: %s" (Format.asprintf "%a" Blif.pp_error e)
  | Ok n2 ->
      Alcotest.(check int) "gates" (Netlist.n_gates n) (Netlist.n_gates n2);
      Alcotest.(check int) "pis" (Netlist.n_pis n) (Netlist.n_pis n2);
      Alcotest.(check int) "pos" (Netlist.n_pos n) (Netlist.n_pos n2);
      Alcotest.(check int) "depth" (Netlist.depth n) (Netlist.depth n2);
      (* Cell assignment preserved per topological position. *)
      Array.iteri
        (fun i (g : Netlist.gate) ->
          Alcotest.(check string)
            (Printf.sprintf "cell %d" i)
            g.Netlist.cell.Cell.name
            (Netlist.gate n2 i).Netlist.cell.Cell.name)
        (Netlist.gates n)

let test_blif_file_io () =
  let lib = Cell.Library.default () in
  let path = Filename.temp_file "statsize" ".blif" in
  let oc = open_out path in
  output_string oc sample_blif;
  close_out oc;
  (match Blif.parse_file ~library:lib path with
  | Ok n -> Alcotest.(check int) "gates" 3 (Netlist.n_gates n)
  | Error e -> Alcotest.failf "parse_file: %s" (Format.asprintf "%a" Blif.pp_error e));
  Sys.remove path

(* examples/c17.blif is a test/dune dep; `dune runtest` runs from the
   stanza directory but `dune exec test/...` from the invocation one, so
   look the file up from either. *)
let c17_path () =
  match List.find_opt Sys.file_exists [ "../examples/c17.blif"; "examples/c17.blif" ] with
  | Some p -> p
  | None -> Alcotest.fail "examples/c17.blif not found (is it a test dep?)"

let test_blif_c17_roundtrip () =
  (* The shipped ISCAS c17 netlist survives file -> netlist -> text ->
     netlist with structure intact. *)
  let lib = Cell.Library.default () in
  match Blif.parse_file ~library:lib (c17_path ()) with
  | Error e -> Alcotest.failf "c17: %s" (Format.asprintf "%a" Blif.pp_error e)
  | Ok n -> (
      Alcotest.(check string) "model" "c17" (Netlist.name n);
      Alcotest.(check int) "gates" 6 (Netlist.n_gates n);
      Alcotest.(check int) "pis" 5 (Netlist.n_pis n);
      Alcotest.(check int) "pos" 2 (Netlist.n_pos n);
      Array.iter
        (fun (g : Netlist.gate) ->
          Alcotest.(check string) "all nand2" "nand2" g.Netlist.cell.Cell.name)
        (Netlist.gates n);
      match Blif.parse_string ~library:lib (Blif.to_string n) with
      | Error e ->
          Alcotest.failf "c17 reparse: %s" (Format.asprintf "%a" Blif.pp_error e)
      | Ok n2 ->
          Alcotest.(check int) "gates" (Netlist.n_gates n) (Netlist.n_gates n2);
          Alcotest.(check int) "pis" (Netlist.n_pis n) (Netlist.n_pis n2);
          Alcotest.(check int) "pos" (Netlist.n_pos n) (Netlist.n_pos n2);
          Alcotest.(check int) "depth" (Netlist.depth n) (Netlist.depth n2);
          (* Same timing, therefore the same circuit for the engines. *)
          let sizes = Netlist.min_sizes n in
          Alcotest.(check (float 1e-12))
            "same deterministic delay"
            (Sta.Dsta.analyze n ~sizes).Sta.Dsta.circuit
            (Sta.Dsta.analyze n2 ~sizes).Sta.Dsta.circuit)

let test_blif_truncated_inputs () =
  (* Cutting the file anywhere — mid-token, mid-continuation, before
     [.end] — must yield Ok (if the prefix happens to be well-formed) or
     a clean Error, never an escaping exception. *)
  let lib = Cell.Library.default () in
  let whole =
    match In_channel.with_open_text (c17_path ()) In_channel.input_all with
    | text -> text
    | exception Sys_error m -> Alcotest.failf "cannot read c17.blif: %s" m
  in
  let saw_error = ref false in
  for len = 0 to String.length whole - 1 do
    match Blif.parse_string ~library:lib (String.sub whole 0 len) with
    | Ok _ -> ()
    | Error e ->
        saw_error := true;
        let msg = Format.asprintf "%a" Blif.pp_error e in
        Alcotest.(check bool)
          (Printf.sprintf "prefix %d has a message" len)
          true
          (String.length msg > 0)
    | exception e ->
        Alcotest.failf "prefix %d escaped with %s" len (Printexc.to_string e)
  done;
  Alcotest.(check bool) "some prefixes are malformed" true !saw_error

let test_blif_parse_file_missing () =
  match Blif.parse_file ~library:(Cell.Library.default ()) "no/such/file.blif" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e ->
      Alcotest.(check bool) "mentions the path" true
        (Format.asprintf "%a" Blif.pp_error e <> "")
  | exception e -> Alcotest.failf "escaped with %s" (Printexc.to_string e)

let prop_blif_roundtrip_random_dags =
  (* Any generated netlist survives serialise -> parse with its structure
     (counts, depth, per-position cells) intact. *)
  let gen =
    QCheck.Gen.(
      let* n_gates = int_range 5 60 in
      let* seed = int_range 0 10_000 in
      let* depth = int_range 2 8 in
      return (n_gates, seed, depth))
  in
  QCheck.Test.make ~name:"BLIF roundtrip preserves random DAG structure" ~count:40
    (QCheck.make gen) (fun (n_gates, seed, target_depth) ->
      let target_depth = min target_depth n_gates in
      let net =
        Generate.random_dag
          { Generate.default_spec with Generate.n_gates; seed; target_depth }
      in
      let lib = Cell.Library.default () in
      match Blif.parse_string ~library:lib (Blif.to_string net) with
      | Error _ -> false
      | Ok net2 ->
          (* the parser may reorder gates within a level, so compare the
             multiset of cells, not per-position *)
          let cell_multiset n =
            Array.to_list
              (Array.map (fun (g : Netlist.gate) -> g.Netlist.cell.Cell.name)
                 (Netlist.gates n))
            |> List.sort compare
          in
          Netlist.n_gates net2 = Netlist.n_gates net
          && Netlist.n_pis net2 = Netlist.n_pis net
          && Netlist.n_pos net2 = Netlist.n_pos net
          && Netlist.depth net2 = Netlist.depth net
          && cell_multiset net = cell_multiset net2)

(* ---- .bench format ----------------------------------------------------------------- *)

let c17_bench =
  {|# c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
|}

let test_bench_parse_c17 () =
  match Bench_format.parse_string ~library:(Cell.Library.default ()) c17_bench with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Bench_format.pp_error e)
  | Ok n ->
      Alcotest.(check int) "gates" 6 (Netlist.n_gates n);
      Alcotest.(check int) "pis" 5 (Netlist.n_pis n);
      Alcotest.(check int) "pos" 2 (Netlist.n_pos n);
      Alcotest.(check int) "depth" 3 (Netlist.depth n)

let test_bench_out_of_order () =
  let text = "INPUT(a)\nOUTPUT(y)\ny = NOT(m)\nm = NOT(a)\n" in
  match Bench_format.parse_string ~library:(Cell.Library.default ()) text with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Bench_format.pp_error e)
  | Ok n -> Alcotest.(check int) "gates" 2 (Netlist.n_gates n)

let test_bench_wide_gate_decomposition () =
  (* NAND of 6 inputs with only 2-4 input nands available: decomposes into
     an AND tree plus a nand root, preserving depth bounds. *)
  let text =
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(y)\n\
     y = NAND(a, b, c, d, e, f)\n"
  in
  match Bench_format.parse_string ~library:(Cell.Library.default ()) text with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Bench_format.pp_error e)
  | Ok n ->
      Alcotest.(check bool) "several gates" true (Netlist.n_gates n >= 3);
      Alcotest.(check int) "one po" 1 (Netlist.n_pos n);
      (* every PI reaches the output cone *)
      Alcotest.(check int) "pis" 6 (Netlist.n_pis n)

let test_bench_dff_cut () =
  let text = "INPUT(a)\nOUTPUT(y)\nq = DFF(m)\nm = NOT(a)\ny = NAND(q, a)\n" in
  match Bench_format.parse_string ~library:(Cell.Library.default ()) text with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Bench_format.pp_error e)
  | Ok n ->
      (* a + pseudo-input for the flop output *)
      Alcotest.(check int) "pis" 2 (Netlist.n_pis n);
      (* y + pseudo-output for the flop data input *)
      Alcotest.(check int) "pos" 2 (Netlist.n_pos n);
      Alcotest.(check int) "gates" 2 (Netlist.n_gates n)

let test_bench_errors () =
  let lib = Cell.Library.default () in
  let expect text =
    match Bench_format.parse_string ~library:lib text with
    | Ok _ -> Alcotest.failf "expected failure for %S" text
    | Error _ -> ()
  in
  expect "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n";
  expect "INPUT(a)\nOUTPUT(y)\ny = NOT(zz)\n";
  expect "INPUT(a)\nOUTPUT(y)\ny = NOT(a\n";
  expect "INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
  expect "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = NOT(a)\n";
  (* cycle *)
  expect "INPUT(a)\nOUTPUT(y)\ny = NAND(a, z)\nz = NOT(y)\n"

(* ---- cell library files -------------------------------------------------------------- *)

let test_cell_file_parse () =
  let text =
    "# lib\ncell inv inputs=1 t_int=0.05 c_in=0.15\ncell nand2 inputs=2 drive=1.1 \
     limit=4 area=1.2\n"
  in
  match Cell_file.parse_string text with
  | Error e -> Alcotest.failf "parse: %s" (Format.asprintf "%a" Cell_file.pp_error e)
  | Ok lib ->
      let inv = Cell.Library.find_exn lib "inv" in
      check_float "t_int" 0.05 inv.Cell.t_int;
      check_float "c_in" 0.15 inv.Cell.c_in;
      check_float "default drive" 1. inv.Cell.drive;
      let nand2 = Cell.Library.find_exn lib "nand2" in
      check_float "limit" 4. nand2.Cell.max_size;
      check_float "area" 1.2 nand2.Cell.area

let test_cell_file_roundtrip () =
  let lib = Cell.Library.default () in
  match Cell_file.parse_string (Cell_file.to_string lib) with
  | Error e -> Alcotest.failf "reparse: %s" (Format.asprintf "%a" Cell_file.pp_error e)
  | Ok lib2 ->
      List.iter
        (fun (c : Cell.t) ->
          let c2 = Cell.Library.find_exn lib2 c.Cell.name in
          check_float (c.Cell.name ^ " t_int") c.Cell.t_int c2.Cell.t_int;
          check_float (c.Cell.name ^ " c_in") c.Cell.c_in c2.Cell.c_in;
          Alcotest.(check int) (c.Cell.name ^ " inputs") c.Cell.n_inputs c2.Cell.n_inputs)
        (Cell.Library.cells lib)

let test_cell_file_errors () =
  let expect text pattern =
    match Cell_file.parse_string text with
    | Ok _ -> Alcotest.failf "expected failure for %S" text
    | Error e ->
        let msg = Format.asprintf "%a" Cell_file.pp_error e in
        let contains haystack needle =
          let nh = String.length haystack and nn = String.length needle in
          let rec scan i =
            i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1))
          in
          scan 0
        in
        if not (contains msg pattern) then
          Alcotest.failf "error %S does not mention %S" msg pattern
  in
  expect "cell x inputs=0\n" "positive integer";
  expect "cell x inputs=2 t_int=abc\n" "not a number";
  expect "cell x inputs=2 bogus=1\n" "unknown field";
  expect "gate x inputs=2\n" "unknown directive";
  expect "cell x inputs=2\ncell x inputs=2\n" "duplicate";
  expect "cell x\n" "missing inputs"

(* Mirrors the BLIF hardening: file-level failures surface as the same
   clean Error the syntax path produces, never an escaping Sys_error. *)
let test_cell_file_parse_file_robust () =
  (match Cell_file.parse_file "no/such/library.cells" with
  | Ok _ -> Alcotest.fail "expected an error for a missing file"
  | Error e ->
      Alcotest.(check bool) "has a message" true
        (Format.asprintf "%a" Cell_file.pp_error e <> "")
  | exception e -> Alcotest.failf "missing file escaped with %s" (Printexc.to_string e));
  match Cell_file.parse_file "." with
  | Ok _ -> Alcotest.fail "expected an error for a directory"
  | Error _ -> ()
  | exception e -> Alcotest.failf "directory escaped with %s" (Printexc.to_string e)

let test_bench_parse_file_robust () =
  let lib = Cell.Library.default () in
  (match Bench_format.parse_file ~library:lib "no/such/circuit.bench" with
  | Ok _ -> Alcotest.fail "expected an error for a missing file"
  | Error e ->
      Alcotest.(check bool) "has a message" true
        (Format.asprintf "%a" Bench_format.pp_error e <> "")
  | exception e -> Alcotest.failf "missing file escaped with %s" (Printexc.to_string e));
  match Bench_format.parse_file ~library:lib "." with
  | Ok _ -> Alcotest.fail "expected an error for a directory"
  | Error _ -> ()
  | exception e -> Alcotest.failf "directory escaped with %s" (Printexc.to_string e)

let test_bench_truncated_prefixes () =
  (* Every prefix of a valid .bench text parses to Ok or a clean Error,
     never an escaping exception (the truncated-input hardening). *)
  let lib = Cell.Library.default () in
  let whole =
    "# c17-ish\nINPUT(G1)\nINPUT(G2)\nINPUT(G3)\nOUTPUT(G22)\n\
     G10 = NAND(G1, G3)\nG11 = NAND(G3, G2)\nG22 = NAND(G10, G11)\n"
  in
  let saw_error = ref false in
  for len = 0 to String.length whole - 1 do
    match Bench_format.parse_string ~library:lib (String.sub whole 0 len) with
    | Ok _ -> ()
    | Error _ -> saw_error := true
    | exception e ->
        Alcotest.failf "prefix %d escaped with %s" len (Printexc.to_string e)
  done;
  Alcotest.(check bool) "some prefixes are malformed" true !saw_error

let test_cell_file_truncated_prefixes () =
  let whole = "# lib\ncell inv inputs=1 t_int=0.05 c_in=0.15\ncell nand2 inputs=2 area=1.2\n" in
  let saw_error = ref false in
  for len = 0 to String.length whole - 1 do
    match Cell_file.parse_string (String.sub whole 0 len) with
    | Ok _ -> ()
    | Error _ -> saw_error := true
    | exception e ->
        Alcotest.failf "prefix %d escaped with %s" len (Printexc.to_string e)
  done;
  Alcotest.(check bool) "some prefixes are malformed" true !saw_error

let () =
  Alcotest.run "circuit"
    [
      ( "cell",
        [
          Alcotest.test_case "defaults" `Quick test_cell_make_defaults;
          Alcotest.test_case "validation" `Quick test_cell_validation;
          Alcotest.test_case "delay formula" `Quick test_cell_delay_formula;
          Alcotest.test_case "delay monotone" `Quick test_cell_delay_decreasing_in_size;
          Alcotest.test_case "input cap" `Quick test_cell_input_cap_scales;
          Alcotest.test_case "library lookup" `Quick test_library_lookup;
          Alcotest.test_case "library best fit" `Quick test_library_best_fit;
          Alcotest.test_case "library duplicates" `Quick test_library_duplicate_rejected;
        ] );
      ( "sigma_model",
        [
          Alcotest.test_case "values" `Quick test_sigma_models;
          Alcotest.test_case "derivative vs FD" `Quick test_sigma_model_derivative_fd;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "builder basic" `Quick test_builder_basic;
          Alcotest.test_case "duplicate pi" `Quick test_builder_duplicate_pi;
          Alcotest.test_case "fanin count" `Quick test_builder_fanin_count_checked;
          Alcotest.test_case "no po" `Quick test_builder_no_po_rejected;
          Alcotest.test_case "dangling fanin" `Quick test_builder_dangling_fanin_rejected;
          Alcotest.test_case "fanout multiplicity" `Quick test_fanout_and_multiplicity;
          Alcotest.test_case "load" `Quick test_load_computation;
          Alcotest.test_case "area / size vectors" `Quick test_area_and_size_vectors;
          Alcotest.test_case "size bounds" `Quick test_check_sizes_bounds;
          Alcotest.test_case "levels / depth" `Quick test_levels_depth;
        ] );
      ( "generate",
        [
          Alcotest.test_case "tree" `Quick test_tree_structure;
          Alcotest.test_case "tree levels" `Quick test_tree_levels_param;
          Alcotest.test_case "fig2" `Quick test_fig2_structure;
          Alcotest.test_case "chain" `Quick test_chain_structure;
          Alcotest.test_case "random dag counts" `Quick test_random_dag_counts;
          Alcotest.test_case "random dag deterministic" `Quick test_random_dag_deterministic;
          Alcotest.test_case "nothing dangles" `Quick test_random_dag_all_gates_reach_po;
          Alcotest.test_case "benchmark stand-ins" `Quick test_benchmark_standins;
          Alcotest.test_case "by_name" `Quick test_by_name;
        ] );
      ( "blif",
        [
          Alcotest.test_case "parse" `Quick test_blif_parse;
          Alcotest.test_case "out-of-order gates" `Quick test_blif_out_of_order_gates;
          Alcotest.test_case "errors" `Quick test_blif_errors;
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          Alcotest.test_case "file io" `Quick test_blif_file_io;
          Alcotest.test_case "c17 roundtrip" `Quick test_blif_c17_roundtrip;
          Alcotest.test_case "truncated inputs fail cleanly" `Quick
            test_blif_truncated_inputs;
          Alcotest.test_case "missing file is a clean error" `Quick
            test_blif_parse_file_missing;
          Seed_info.to_alcotest prop_blif_roundtrip_random_dags;
        ] );
      ( "bench_format",
        [
          Alcotest.test_case "c17" `Quick test_bench_parse_c17;
          Alcotest.test_case "out of order" `Quick test_bench_out_of_order;
          Alcotest.test_case "wide gate decomposition" `Quick
            test_bench_wide_gate_decomposition;
          Alcotest.test_case "dff cut" `Quick test_bench_dff_cut;
          Alcotest.test_case "errors" `Quick test_bench_errors;
          Alcotest.test_case "parse_file robustness" `Quick test_bench_parse_file_robust;
          Alcotest.test_case "truncated prefixes" `Quick test_bench_truncated_prefixes;
        ] );
      ( "cell_file",
        [
          Alcotest.test_case "parse" `Quick test_cell_file_parse;
          Alcotest.test_case "roundtrip" `Quick test_cell_file_roundtrip;
          Alcotest.test_case "errors" `Quick test_cell_file_errors;
          Alcotest.test_case "parse_file robustness" `Quick test_cell_file_parse_file_robust;
          Alcotest.test_case "truncated prefixes" `Quick test_cell_file_truncated_prefixes;
        ] );
    ]
