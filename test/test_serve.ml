(* Tests for the timing-as-a-service daemon (lib/serve): exact JSON
   float round-trips, protocol encode/decode, the breaker state machine
   on a hand-driven clock, the admission shedding policy, the warmed-
   engine LRU, request execution (including the degradation rung), the
   in-process server (conservation law, drain semantics, quarantine),
   and a release-gated multi-client soak under fault injection whose
   fully-served answers are checked Int64-bit-identical to batch
   evaluations. *)

let model = Circuit.Sigma_model.paper_default

let netlist name =
  match Circuit.Generate.by_name name with
  | Some net -> net
  | None -> Alcotest.failf "unknown built-in circuit %S" name

let bits = Int64.bits_of_float

(* ---- Json -------------------------------------------------------------------- *)

(* The whole protocol stands on this: every float survives the wire
   bit-for-bit, so string comparison of rendered results is Int64
   bit-identity. *)
let test_json_float_bits () =
  let cases =
    [
      0.1;
      1. /. 3.;
      Float.pi;
      7.715102599625038;
      1e-308;
      4.9e-324 (* smallest subnormal *);
      1e15 -. 0.5;
      123456789.;
      -42.;
      0.;
    ]
  in
  List.iter
    (fun f ->
      let s = Serve.Json.number_to_string f in
      match float_of_string_opt s with
      | Some f' when Int64.equal (bits f) (bits f') -> ()
      | Some f' -> Alcotest.failf "%h rendered %S parsed back %h" f s f'
      | None -> Alcotest.failf "%h rendered unparseable %S" f s)
    cases;
  (* Integral fast path renders without exponent or fraction. *)
  Alcotest.(check string) "integral" "7" (Serve.Json.number_to_string 7.);
  (* Round trip through a full document. *)
  let doc = Serve.Json.Obj [ ("xs", Serve.Json.List (List.map (fun f -> Serve.Json.Num f) cases)) ] in
  match Serve.Json.parse (Serve.Json.to_string doc) with
  | Error msg -> Alcotest.failf "cannot reparse own rendering: %s" msg
  | Ok doc' ->
      Alcotest.(check string)
        "document round-trip" (Serve.Json.to_string doc)
        (Serve.Json.to_string doc')

let test_json_values_and_errors () =
  let doc =
    Serve.Json.Obj
      [
        ("s", Serve.Json.Str "quote \" backslash \\ newline \n tab \t");
        ("b", Serve.Json.Bool true);
        ("n", Serve.Json.Null);
        ("l", Serve.Json.List [ Serve.Json.Num 1.; Serve.Json.Str "two" ]);
        ("o", Serve.Json.Obj [ ("nested", Serve.Json.Bool false) ]);
      ]
  in
  (match Serve.Json.parse (Serve.Json.to_string doc) with
  | Ok doc' when Serve.Json.to_string doc = Serve.Json.to_string doc' -> ()
  | Ok _ -> Alcotest.fail "string/escape round-trip changed the document"
  | Error msg -> Alcotest.failf "cannot parse own rendering: %s" msg);
  List.iter
    (fun s ->
      match Serve.Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed garbage %S" s)
    [ ""; "{"; "[1,"; "{\"a\":}"; "tru"; "1 2" (* trailing garbage *); "\"unterminated" ]

(* ---- Protocol ----------------------------------------------------------------- *)

let sample_requests =
  [
    {
      Serve.Protocol.id = Serve.Json.Num 1.;
      circuit = Some "tree";
      deadline_ms = None;
      max_evals = None;
      body = Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed };
    };
    {
      Serve.Protocol.id = Serve.Json.Str "q7";
      circuit = Some "fig2";
      deadline_ms = Some 12.5;
      max_evals = Some 400;
      body = Serve.Protocol.Analyze { sizes = Serve.Protocol.Explicit [| 1.; 2.5; 1.25; 3. |] };
    };
    {
      Serve.Protocol.id = Serve.Json.Num 2.;
      circuit = None;
      deadline_ms = None;
      max_evals = None;
      body = Serve.Protocol.Whatif { deltas = [| (0, 2.0); (3, 1.5) |] };
    };
    {
      Serve.Protocol.id = Serve.Json.Num 3.;
      circuit = Some "tree";
      deadline_ms = None;
      max_evals = None;
      body =
        Serve.Protocol.Gradient
          { sizes = Serve.Protocol.Uniform 1.5; seed = Serve.Protocol.Seed_mu_k_sigma 3. };
    };
    {
      Serve.Protocol.id = Serve.Json.Num 4.;
      circuit = Some "fig2";
      deadline_ms = Some 500.;
      max_evals = Some 2000;
      body =
        Serve.Protocol.Size
          { objective = Serve.Protocol.Min_delay 3.; recovery = false };
    };
    {
      Serve.Protocol.id = Serve.Json.Null;
      circuit = None;
      deadline_ms = None;
      max_evals = None;
      body = Serve.Protocol.Stats;
    };
    {
      Serve.Protocol.id = Serve.Json.Num 5.;
      circuit = None;
      deadline_ms = None;
      max_evals = None;
      body = Serve.Protocol.Health;
    };
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      let line = Serve.Protocol.encode_request r in
      match Serve.Protocol.decode_request line with
      | Error msg -> Alcotest.failf "cannot decode %S: %s" line msg
      | Ok r' ->
          Alcotest.(check string)
            (Printf.sprintf "round-trip of %s" line)
            line
            (Serve.Protocol.encode_request r'))
    sample_requests

let test_request_rejects_garbage () =
  List.iter
    (fun line ->
      match Serve.Protocol.decode_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "decoded garbage request %S" line)
    [
      "";
      "{}";
      "{\"op\":\"warp\"}";
      "{\"op\":\"whatif\"}";
      "{\"op\":\"whatif\",\"deltas\":[[1]]}";
      "{\"op\":\"size\"}";
      "{\"op\":\"size\",\"objective\":{\"kind\":\"min-sigma\"}}";
      "{\"op\":\"analyze\",\"sizes\":\"big\"}";
    ]

let sample_responses =
  [
    {
      Serve.Protocol.id = Serve.Json.Num 1.;
      kind = "analyze";
      payload =
        Serve.Protocol.Analysis
          { mu = 7.715102599625038; var = 0.7300819479831953; area = 7.; n_gates = 7 };
    };
    {
      Serve.Protocol.id = Serve.Json.Num 2.;
      kind = "analyze";
      payload = Serve.Protocol.Degraded { typical = 6.970000000000001; area = 7. };
    };
    {
      Serve.Protocol.id = Serve.Json.Num 3.;
      kind = "gradient";
      payload =
        Serve.Protocol.Gradient_result
          { value = 10.278447588472376; gradient = [| -0.5; 0.25; 1. /. 3. |] };
    };
    {
      Serve.Protocol.id = Serve.Json.Num 4.;
      kind = "size";
      payload =
        Serve.Protocol.Sized
          {
            mu = 5.5;
            sigma = 0.5;
            area = 12.;
            sizes = [| 3.; 3.; 3.; 3. |];
            evaluations = 120;
            rungs = [ "restart-jittered" ];
          };
    };
    {
      Serve.Protocol.id = Serve.Json.Num 5.;
      kind = "health";
      payload =
        Serve.Protocol.Health_result
          { status = "ok"; uptime_seconds = 1.5; resident = [ "tree" ] };
    };
    {
      Serve.Protocol.id = Serve.Json.Num 6.;
      kind = "size";
      payload =
        Serve.Protocol.Error
          { code = Serve.Protocol.Quarantined; message = "circuit quarantined" };
    };
  ]

let test_response_roundtrip () =
  List.iter
    (fun r ->
      let line = Serve.Protocol.encode_response r in
      match Serve.Protocol.decode_response line with
      | Error msg -> Alcotest.failf "cannot decode %S: %s" line msg
      | Ok r' ->
          Alcotest.(check string)
            (Printf.sprintf "round-trip of %s" line)
            line
            (Serve.Protocol.encode_response r'))
    sample_responses

let test_shed_class_order () =
  let cls b = Serve.Protocol.shed_class b in
  let analyze = Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed } in
  let whatif = Serve.Protocol.Whatif { deltas = [||] } in
  let gradient =
    Serve.Protocol.Gradient
      { sizes = Serve.Protocol.Committed; seed = Serve.Protocol.Seed_mu }
  in
  let size =
    Serve.Protocol.Size
      { objective = Serve.Protocol.Min_delay 0.; recovery = true }
  in
  Alcotest.(check bool) "size sheds before gradient" true (cls size > cls gradient);
  Alcotest.(check bool) "gradient sheds before analyze" true
    (cls gradient > cls analyze);
  Alcotest.(check int) "whatif rides with analyze" (cls analyze) (cls whatif);
  Alcotest.(check bool) "control plane never sheds" true
    (cls Serve.Protocol.Stats < 0 && cls Serve.Protocol.Health < 0)

let test_error_code_names () =
  List.iter
    (fun c ->
      match Serve.Protocol.error_code_of_name (Serve.Protocol.error_code_name c) with
      | Some c' when c = c' -> ()
      | _ ->
          Alcotest.failf "error code %S does not round-trip"
            (Serve.Protocol.error_code_name c))
    [
      Serve.Protocol.Bad_request;
      Serve.Protocol.Unknown_circuit;
      Serve.Protocol.Overloaded;
      Serve.Protocol.Timeout;
      Serve.Protocol.Quarantined;
      Serve.Protocol.Shutting_down;
      Serve.Protocol.Breakdown;
      Serve.Protocol.Unconverged;
      Serve.Protocol.Internal;
    ]

(* ---- Breaker ------------------------------------------------------------------ *)

let test_breaker_state_machine () =
  let clock = ref 0 in
  let b =
    Serve.Breaker.create
      ~now:(fun () -> !clock)
      { Serve.Breaker.threshold = 2; cooldown_s = 1.0 }
  in
  Alcotest.(check bool) "fresh closed" true (Serve.Breaker.state b = Serve.Breaker.Closed);
  Alcotest.(check bool) "closed admits" true (Serve.Breaker.admit b = Serve.Breaker.Allow);
  Serve.Breaker.failure b;
  (* One failure then a success: the run resets, no trip. *)
  Serve.Breaker.success b;
  Serve.Breaker.failure b;
  Alcotest.(check bool) "still closed after interrupted run" true
    (Serve.Breaker.state b = Serve.Breaker.Closed);
  Serve.Breaker.failure b;
  Alcotest.(check bool) "tripped at threshold" true
    (Serve.Breaker.state b = Serve.Breaker.Open);
  Alcotest.(check int) "one trip" 1 (Serve.Breaker.trips b);
  Alcotest.(check bool) "open rejects" true (Serve.Breaker.admit b = Serve.Breaker.Reject);
  (* Cooldown elapses: exactly one trial probe. *)
  clock := 1_000_000_001;
  Alcotest.(check bool) "cooldown over: trial" true
    (Serve.Breaker.admit b = Serve.Breaker.Trial);
  Alcotest.(check bool) "half-open" true
    (Serve.Breaker.state b = Serve.Breaker.Half_open);
  Alcotest.(check bool) "second probe rejected while trial in flight" true
    (Serve.Breaker.admit b = Serve.Breaker.Reject);
  (* Failed trial: re-open with a fresh cooldown, counted as a trip. *)
  Serve.Breaker.failure b;
  Alcotest.(check bool) "re-opened" true (Serve.Breaker.state b = Serve.Breaker.Open);
  Alcotest.(check int) "two trips" 2 (Serve.Breaker.trips b);
  Alcotest.(check bool) "fresh cooldown holds" true
    (Serve.Breaker.admit b = Serve.Breaker.Reject);
  clock := 2_000_000_002;
  Alcotest.(check bool) "second trial" true
    (Serve.Breaker.admit b = Serve.Breaker.Trial);
  (* Successful trial re-closes and resets the failure run. *)
  Serve.Breaker.success b;
  Alcotest.(check bool) "re-closed" true (Serve.Breaker.state b = Serve.Breaker.Closed);
  Serve.Breaker.failure b;
  Alcotest.(check bool) "run restarted from zero" true
    (Serve.Breaker.state b = Serve.Breaker.Closed)

(* ---- Admission ---------------------------------------------------------------- *)

let test_admission_shedding () =
  let q = Serve.Admission.create ~capacity:2 in
  (* Fill with two solves. *)
  Alcotest.(check bool) "first enqueued" true
    (Serve.Admission.submit q ~cls:2 "size-a" = Serve.Admission.Enqueued);
  Alcotest.(check bool) "second enqueued" true
    (Serve.Admission.submit q ~cls:2 "size-b" = Serve.Admission.Enqueued);
  Alcotest.(check int) "queue full" 2 (Serve.Admission.length q);
  (* A third solve is not strictly more important: it sheds itself. *)
  Alcotest.(check bool) "equal class sheds self" true
    (Serve.Admission.submit q ~cls:2 "size-c" = Serve.Admission.Shed_self);
  (* An analysis evicts the FIFO-oldest solve. *)
  (match Serve.Admission.submit q ~cls:0 "analyze-a" with
  | Serve.Admission.Shed_victim "size-a" -> ()
  | Serve.Admission.Shed_victim v -> Alcotest.failf "shed %S, want oldest solve" v
  | _ -> Alcotest.fail "analysis arrival did not evict a solve");
  (* A second analysis evicts the remaining solve; a third sheds itself. *)
  (match Serve.Admission.submit q ~cls:0 "analyze-b" with
  | Serve.Admission.Shed_victim "size-b" -> ()
  | _ -> Alcotest.fail "second analysis did not evict the remaining solve");
  Alcotest.(check bool) "all-analysis queue sheds arrival" true
    (Serve.Admission.submit q ~cls:0 "analyze-c" = Serve.Admission.Shed_self);
  (* Control-plane entries are capacity-exempt and uncounted. *)
  Alcotest.(check bool) "stats always enqueues" true
    (Serve.Admission.submit q ~cls:(-1) "stats" = Serve.Admission.Enqueued);
  Alcotest.(check int) "control plane uncounted" 2 (Serve.Admission.length q);
  (* FIFO drain order, control plane interleaved where it arrived. *)
  let order = Serve.Admission.drain q in
  Alcotest.(check (list string)) "fifo order"
    [ "analyze-a"; "analyze-b"; "stats" ]
    order;
  Alcotest.(check bool) "empty after drain" true (Serve.Admission.is_empty q)

(* ---- Registry ----------------------------------------------------------------- *)

let test_registry_lru () =
  let r = Serve.Registry.create ~capacity:1 () in
  Serve.Registry.register r ~name:"tree" ~model (netlist "tree");
  Serve.Registry.register r ~name:"fig2" ~model (netlist "fig2");
  (match
     try
       Serve.Registry.register r ~name:"tree" ~model (netlist "tree");
       `Registered
     with Invalid_argument _ -> `Rejected
   with
  | `Rejected -> ()
  | `Registered -> Alcotest.fail "duplicate registration accepted");
  Alcotest.(check int) "nothing warm yet" 0 (Serve.Registry.warm_count r);
  let tree = Option.get (Serve.Registry.find r "tree") in
  let fig2 = Option.get (Serve.Registry.find r "fig2") in
  let tgt = Serve.Registry.target r tree in
  Alcotest.(check (list string)) "tree resident" [ "tree" ] (Serve.Registry.resident r);
  (* Commit new sizes on the warmed target (what a converged size request
     does), then force an LRU eviction by warming the other circuit. *)
  let committed =
    Array.mapi
      (fun i _ -> Float.min 2.0 (Circuit.Netlist.max_sizes tgt.Serve.Exec.net).(i))
      tgt.Serve.Exec.sizes
  in
  tgt.Serve.Exec.sizes <- committed;
  ignore (Serve.Registry.target r fig2);
  Alcotest.(check (list string)) "fig2 evicted tree" [ "fig2" ]
    (Serve.Registry.resident r);
  Alcotest.(check int) "one eviction" 1 (Serve.Registry.evictions r);
  (* Committed sizes survive the eviction; only the warm engine is lost. *)
  let tgt' = Serve.Registry.target r tree in
  Alcotest.(check int) "two evictions after re-warm" 2 (Serve.Registry.evictions r);
  Array.iteri
    (fun i s ->
      if not (Int64.equal (bits s) (bits committed.(i))) then
        Alcotest.failf "committed size %d lost across eviction: %h <> %h" i s
          committed.(i))
    tgt'.Serve.Exec.sizes

(* ---- Exec --------------------------------------------------------------------- *)

let expired_budget () =
  let t = ref 0 in
  Util.Guard.budget
    ~now:(fun () ->
      incr t;
      !t)
    ~deadline:0. ()

let render p = Serve.Json.to_string (Serve.Protocol.result_json p)

let batch_analysis net ~sizes =
  let arena = Sta.Arena.create net in
  let r = Sta.Ssta.analyze ~arena ~model net ~sizes in
  Serve.Protocol.Analysis
    {
      mu = Statdelay.Normal.mu r.Sta.Ssta.circuit;
      var = Statdelay.Normal.var r.Sta.Ssta.circuit;
      area = Circuit.Netlist.area net ~sizes;
      n_gates = Circuit.Netlist.n_gates net;
    }

let test_exec_analyze_bit_identity () =
  let net = netlist "tree" in
  let target = Serve.Exec.create ~model net in
  let sizes = Array.map (fun s -> s +. 0.5) (Circuit.Netlist.min_sizes net) in
  let payload =
    Serve.Exec.exec target
      (Serve.Protocol.Analyze { sizes = Serve.Protocol.Explicit sizes })
  in
  Alcotest.(check string) "served equals batch, bit for bit"
    (render (batch_analysis net ~sizes))
    (render payload);
  (* Committed spec answers at the target's committed (all-min) sizes. *)
  let payload' =
    Serve.Exec.exec target (Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed })
  in
  Alcotest.(check string) "committed spec"
    (render (batch_analysis net ~sizes:(Circuit.Netlist.min_sizes net)))
    (render payload')

let test_exec_degraded_and_timeout () =
  let net = netlist "tree" in
  let target = Serve.Exec.create ~model net in
  let sizes = Circuit.Netlist.min_sizes net in
  (match
     Serve.Exec.exec ~budget:(expired_budget ()) target
       (Serve.Protocol.Analyze { sizes = Serve.Protocol.Explicit sizes })
   with
  | Serve.Protocol.Degraded { typical; area } ->
      let det = Sta.Dsta.analyze net ~sizes in
      Alcotest.(check bool) "typical is the deterministic sweep, bit for bit" true
        (Int64.equal (bits typical) (bits det.Sta.Dsta.circuit));
      Alcotest.(check bool) "area carried" true
        (Int64.equal (bits area) (bits (Circuit.Netlist.area net ~sizes)))
  | p -> Alcotest.failf "expired analyze answered %s, want degraded" (render p));
  (match
     Serve.Exec.exec ~budget:(expired_budget ()) target
       (Serve.Protocol.Gradient
          { sizes = Serve.Protocol.Committed; seed = Serve.Protocol.Seed_mu })
   with
  | Serve.Protocol.Error { code = Serve.Protocol.Timeout; _ } -> ()
  | p -> Alcotest.failf "expired gradient answered %s, want timeout" (render p));
  match
    Serve.Exec.exec ~budget:(expired_budget ()) target
      (Serve.Protocol.Size
         { objective = Serve.Protocol.Min_delay 0.; recovery = true })
  with
  | Serve.Protocol.Error { code = Serve.Protocol.Timeout; _ } -> ()
  | p -> Alcotest.failf "expired size answered %s, want timeout" (render p)

let test_exec_bad_requests () =
  let net = netlist "tree" in
  let target = Serve.Exec.create ~model net in
  (match
     Serve.Exec.exec target (Serve.Protocol.Whatif { deltas = [| (99, 2.0) |] })
   with
  | Serve.Protocol.Error { code = Serve.Protocol.Bad_request; _ } -> ()
  | p -> Alcotest.failf "out-of-range whatif answered %s" (render p));
  (match
     Serve.Exec.exec target
       (Serve.Protocol.Analyze { sizes = Serve.Protocol.Uniform 0.25 })
   with
  | Serve.Protocol.Error { code = Serve.Protocol.Bad_request; _ } -> ()
  | p -> Alcotest.failf "below-box uniform answered %s" (render p));
  match
    Serve.Exec.exec target
      (Serve.Protocol.Analyze
         { sizes = Serve.Protocol.Explicit [| 1.; 2. |] (* wrong length *) })
  with
  | Serve.Protocol.Error { code = Serve.Protocol.Bad_request; _ } -> ()
  | p -> Alcotest.failf "wrong-length sizes answered %s" (render p)

let test_exec_size_commits () =
  let net = netlist "fig2" in
  let target = Serve.Exec.create ~model net in
  match
    Serve.Exec.exec target
      (Serve.Protocol.Size
         { objective = Serve.Protocol.Min_delay 3.; recovery = true })
  with
  | Serve.Protocol.Sized { sizes; _ } ->
      Array.iteri
        (fun i s ->
          if not (Int64.equal (bits s) (bits target.Serve.Exec.sizes.(i))) then
            Alcotest.failf "size %d not committed: %h <> %h" i
              target.Serve.Exec.sizes.(i) s)
        sizes;
      (* A Committed analyze now answers at the solution point. *)
      let payload =
        Serve.Exec.exec target
          (Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed })
      in
      Alcotest.(check string) "committed view moved to the solution"
        (render (batch_analysis net ~sizes))
        (render payload)
  | p -> Alcotest.failf "fig2 min-delay solve answered %s" (render p)

(* ---- Server ------------------------------------------------------------------- *)

(* A thread-safe reply collector: replies may arrive from the executor
   thread or synchronously from submit_line. *)
let collector () =
  let lock = Mutex.create () in
  let lines = ref [] in
  let reply line =
    Mutex.lock lock;
    lines := line :: !lines;
    Mutex.unlock lock
  in
  let all () =
    Mutex.lock lock;
    let r = List.rev !lines in
    Mutex.unlock lock;
    r
  in
  (reply, all)

let decode line =
  match Serve.Protocol.decode_response line with
  | Ok r -> r
  | Error msg -> Alcotest.failf "undecodable reply %S: %s" line msg

let req ?id ?circuit ?deadline_ms ?max_evals body =
  Serve.Protocol.encode_request
    {
      Serve.Protocol.id =
        (match id with None -> Serve.Json.Null | Some i -> Serve.Json.Num (float_of_int i));
      circuit;
      deadline_ms;
      max_evals;
      body;
    }

let conservation_holds t =
  let submitted, served, degraded, shed, refused = Serve.Server.counters t in
  if submitted <> served + degraded + shed + refused then
    Alcotest.failf "conservation violated: %d <> %d + %d + %d + %d" submitted
      served degraded shed refused

(* One of each request kind through a running server; every reply typed,
   conservation exact, the analyze answer bit-identical to batch. *)
let test_server_serves_all_kinds () =
  let t = Serve.Server.create () in
  Serve.Server.add_circuit t ~name:"tree" ~model (netlist "tree");
  let reply, all = collector () in
  Serve.Server.start t;
  let submit = Serve.Server.submit_line t ~reply in
  submit (req ~id:1 (Serve.Protocol.Health));
  submit (req ~id:2 ~circuit:"tree" (Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed }));
  submit (req ~id:3 ~circuit:"tree" (Serve.Protocol.Whatif { deltas = [| (0, 2.0) |] }));
  submit
    (req ~id:4 ~circuit:"tree"
       (Serve.Protocol.Gradient
          { sizes = Serve.Protocol.Committed; seed = Serve.Protocol.Seed_mu_k_sigma 3. }));
  submit
    (req ~id:5 ~circuit:"tree" ~max_evals:2000
       (Serve.Protocol.Size
          { objective = Serve.Protocol.Min_delay 3.; recovery = true }));
  submit (req ~id:6 (Serve.Protocol.Stats));
  Serve.Server.stop ~drain:false t;
  let replies = List.map decode (all ()) in
  Alcotest.(check int) "six replies" 6 (List.length replies);
  List.iter
    (fun (r : Serve.Protocol.response) ->
      match r.payload with
      | Serve.Protocol.Error { code; message } ->
          Alcotest.failf "request %s failed: %s %s" r.kind
            (Serve.Protocol.error_code_name code)
            message
      | _ -> ())
    replies;
  conservation_holds t;
  let submitted, served, _, _, _ = Serve.Server.counters t in
  Alcotest.(check int) "all submitted" 6 submitted;
  Alcotest.(check int) "all served" 6 served;
  (* The analyze reply (id 2, pre-solve) is bit-identical to batch. *)
  let analyze =
    List.find
      (fun (r : Serve.Protocol.response) -> r.id = Serve.Json.Num 2.)
      replies
  in
  let net = netlist "tree" in
  Alcotest.(check string) "served analyze equals batch"
    (render (batch_analysis net ~sizes:(Circuit.Netlist.min_sizes net)))
    (render analyze.payload)

let test_server_typed_failures () =
  let t = Serve.Server.create () in
  Serve.Server.add_circuit t ~name:"tree" ~model (netlist "tree");
  let reply, all = collector () in
  Serve.Server.start t;
  let submit = Serve.Server.submit_line t ~reply in
  submit (req ~id:1 ~circuit:"nope" (Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed }));
  submit "this is not json";
  submit
    (req ~id:3 ~circuit:"tree" ~deadline_ms:1e-6
       (Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed }));
  submit
    (req ~id:4 ~circuit:"tree" ~deadline_ms:1e-6
       (Serve.Protocol.Gradient
          { sizes = Serve.Protocol.Committed; seed = Serve.Protocol.Seed_mu }));
  Serve.Server.stop ~drain:false t;
  let replies = List.map decode (all ()) in
  Alcotest.(check int) "four replies" 4 (List.length replies);
  let by_id i =
    List.find (fun (r : Serve.Protocol.response) -> r.id = Serve.Json.Num (float_of_int i)) replies
  in
  (match (by_id 1).payload with
  | Serve.Protocol.Error { code = Serve.Protocol.Unknown_circuit; _ } -> ()
  | p -> Alcotest.failf "unknown circuit answered %s" (render p));
  (match
     List.find_opt
       (fun (r : Serve.Protocol.response) -> r.id = Serve.Json.Null)
       replies
   with
  | Some { payload = Serve.Protocol.Error { code = Serve.Protocol.Bad_request; _ }; _ } -> ()
  | _ -> Alcotest.fail "garbage line did not produce a typed bad_request");
  (* An over-deadline analyze degrades (flagged mean-only answer)... *)
  (match (by_id 3).payload with
  | Serve.Protocol.Degraded { typical; _ } ->
      let net = netlist "tree" in
      let det = Sta.Dsta.analyze net ~sizes:(Circuit.Netlist.min_sizes net) in
      Alcotest.(check bool) "degraded typical is the Dsta sweep" true
        (Int64.equal (bits typical) (bits det.Sta.Dsta.circuit))
  | p -> Alcotest.failf "over-deadline analyze answered %s" (render p));
  (* ...while an over-deadline gradient gets a typed timeout. *)
  (match (by_id 4).payload with
  | Serve.Protocol.Error { code = Serve.Protocol.Timeout; _ } -> ()
  | p -> Alcotest.failf "over-deadline gradient answered %s" (render p));
  conservation_holds t;
  let submitted, served, degraded, shed, refused = Serve.Server.counters t in
  Alcotest.(check int) "submitted" 4 submitted;
  Alcotest.(check int) "served" 0 served;
  Alcotest.(check int) "degraded" 1 degraded;
  Alcotest.(check int) "shed" 0 shed;
  Alcotest.(check int) "refused" 3 refused

(* Shedding and drain, made deterministic by submitting while the
   executor has not started: the queue fills, sheds by priority, and the
   delayed start in Drain mode answers the leftovers shutting_down. *)
let test_server_shed_and_drain () =
  let t =
    Serve.Server.create
      ~config:{ Serve.Server.default_config with queue_capacity = 2 }
      ()
  in
  Serve.Server.add_circuit t ~name:"tree" ~model (netlist "tree");
  let reply, all = collector () in
  let submit = Serve.Server.submit_line t ~reply in
  let size_body =
    Serve.Protocol.Size { objective = Serve.Protocol.Min_delay 0.; recovery = true }
  in
  submit (req ~id:1 size_body);
  submit (req ~id:2 size_body);
  (* Equal class: the arrival is refused. *)
  submit (req ~id:3 size_body);
  (* Analysis: evicts the oldest queued solve (id 1). *)
  submit (req ~id:4 (Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed }));
  (* SIGTERM semantics: mode flips to Drain before the executor runs, so
     the queued requests (id 2 and 4) get typed shutting_down replies. *)
  Serve.Server.stop ~drain:true t;
  Serve.Server.start t;
  Serve.Server.stop t;
  (* A submission after shutdown is refused immediately. *)
  submit (req ~id:5 (Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed }));
  let replies = List.map decode (all ()) in
  Alcotest.(check int) "five replies" 5 (List.length replies);
  let code_of i =
    match
      List.find
        (fun (r : Serve.Protocol.response) -> r.id = Serve.Json.Num (float_of_int i))
        replies
    with
    | { payload = Serve.Protocol.Error { code; _ }; _ } -> Serve.Protocol.error_code_name code
    | _ -> "ok"
  in
  Alcotest.(check string) "oldest solve shed by the analysis" "overloaded" (code_of 1);
  Alcotest.(check string) "queued solve drained" "shutting_down" (code_of 2);
  Alcotest.(check string) "equal-class arrival shed" "overloaded" (code_of 3);
  Alcotest.(check string) "queued analysis drained" "shutting_down" (code_of 4);
  Alcotest.(check string) "post-shutdown submission refused" "shutting_down"
    (code_of 5);
  conservation_holds t;
  let submitted, served, degraded, shed, refused = Serve.Server.counters t in
  Alcotest.(check int) "submitted" 5 submitted;
  Alcotest.(check int) "served" 0 served;
  Alcotest.(check int) "degraded" 0 degraded;
  Alcotest.(check int) "shed" 2 shed;
  Alcotest.(check int) "refused" 3 refused

(* Quarantine: with a fault plan that breaks every solve, the breaker
   trips after [threshold] breakdowns and quarantines further solves —
   while analyses on the same circuit keep serving. *)
let test_server_quarantine () =
  let plan =
    Util.Fault.plan ~seed:11
      [
        {
          Util.Fault.kind = Util.Fault.Nan_value;
          component = None;
          trigger = Util.Fault.Always;
        };
      ]
  in
  let instrument problem =
    Nlp.Problem.map_components
      (fun ~component f ->
        Util.Fault.wrap plan ~component:(Nlp.Problem.component_index component) f)
      problem
  in
  let t =
    Serve.Server.create ~instrument
      ~config:
        {
          Serve.Server.default_config with
          breaker = { Serve.Breaker.threshold = 3; cooldown_s = 3600. };
        }
      ()
  in
  Serve.Server.add_circuit t ~name:"fig2" ~model (netlist "fig2");
  let reply, all = collector () in
  Serve.Server.start t;
  let submit = Serve.Server.submit_line t ~reply in
  let size i =
    submit
      (req ~id:i ~circuit:"fig2" ~max_evals:400
         (Serve.Protocol.Size
            { objective = Serve.Protocol.Min_delay 3.; recovery = false }))
  in
  size 1;
  size 2;
  size 3;
  size 4;
  submit (req ~id:5 ~circuit:"fig2" (Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed }));
  Serve.Server.stop ~drain:false t;
  let replies = List.map decode (all ()) in
  let code_of i =
    match
      List.find
        (fun (r : Serve.Protocol.response) -> r.id = Serve.Json.Num (float_of_int i))
        replies
    with
    | { payload = Serve.Protocol.Error { code; _ }; _ } -> Serve.Protocol.error_code_name code
    | _ -> "ok"
  in
  Alcotest.(check string) "first breakdown" "breakdown" (code_of 1);
  Alcotest.(check string) "second breakdown" "breakdown" (code_of 2);
  Alcotest.(check string) "third breakdown trips the breaker" "breakdown" (code_of 3);
  Alcotest.(check string) "fourth solve quarantined" "quarantined" (code_of 4);
  Alcotest.(check string) "analyze still serves on the quarantined circuit" "ok"
    (code_of 5);
  conservation_holds t;
  let _, served, _, _, refused = Serve.Server.counters t in
  Alcotest.(check int) "one served" 1 served;
  Alcotest.(check int) "four refused" 4 refused

(* ---- Soak (release-gated) ------------------------------------------------------ *)

(* Same inlining canary as test_arena / the sim invariants: the soak is
   a release-profile drill (CI runs it there); dev builds skip it. *)
let kernels_inlined () =
  let out = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 2 in
  Bigarray.Array1.fill out 0.;
  let x = Sys.opaque_identity 0.5 in
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    Statdelay.Clark.add_into ~mu_a:(x +. 0.5) ~var_a:(x *. 0.2) ~mu_b:(x +. 1.5)
      ~var_b:(x *. 0.4) out 0
  done;
  ignore
    (Sys.opaque_identity (Statdelay.Clark.vget out 0 +. Statdelay.Clark.vget out 1));
  Gc.minor_words () -. w0 < 64.

let soak_circuits = [| "tree"; "fig2"; "chain" |]

(* Per-request deterministic explicit sizes, so a batch recomputation is
   possible no matter how requests interleaved with committing solves. *)
let soak_sizes net ~seed ~key =
  let rng = Util.Rng.keyed seed ~key in
  let maxs = Circuit.Netlist.max_sizes net in
  Array.init (Circuit.Netlist.n_gates net) (fun g ->
      Util.Rng.uniform rng ~lo:1.0 ~hi:maxs.(g))

let test_soak_multi_client () =
  if not (kernels_inlined ()) then Alcotest.skip ()
  else begin
    let n_clients = 4 and per_client = 40 in
    let plan =
      Util.Fault.plan ~seed:7
        [
          {
            Util.Fault.kind = Util.Fault.Nan_value;
            component = None;
            trigger = Util.Fault.First 2;
          };
          {
            Util.Fault.kind = Util.Fault.Perturb 0.25;
            component = None;
            trigger = Util.Fault.First 3;
          };
        ]
    in
    let instrument problem =
      Nlp.Problem.map_components
        (fun ~component f ->
          Util.Fault.wrap plan ~component:(Nlp.Problem.component_index component) f)
        problem
    in
    let t =
      Serve.Server.create ~instrument
        ~config:
          {
            Serve.Server.default_config with
            queue_capacity = 8;
            warm_capacity = 2;
          }
        ()
    in
    let nets = Array.map netlist soak_circuits in
    Array.iteri
      (fun i name -> Serve.Server.add_circuit t ~name ~model nets.(i))
      soak_circuits;
    let reply, all = collector () in
    Serve.Server.start t;
    let request_line ~client ~i =
      let id = (client * 1000) + i in
      let ci = i mod Array.length soak_circuits in
      let circuit = soak_circuits.(ci) in
      let net = nets.(ci) in
      match i mod 8 with
      | 0 | 1 ->
          req ~id ~circuit
            (Serve.Protocol.Analyze
               { sizes = Serve.Protocol.Explicit (soak_sizes net ~seed:client ~key:i) })
      | 2 ->
          req ~id ~circuit
            (Serve.Protocol.Gradient
               {
                 sizes = Serve.Protocol.Explicit (soak_sizes net ~seed:client ~key:i);
                 seed = Serve.Protocol.Seed_mu_k_sigma 3.;
               })
      | 3 -> req ~id ~circuit (Serve.Protocol.Whatif { deltas = [| (0, 1.5) |] })
      | 4 ->
          req ~id ~circuit ~max_evals:400
            (Serve.Protocol.Size
               { objective = Serve.Protocol.Min_delay 3.; recovery = true })
      | 5 ->
          (* Deliberately hopeless deadline: must degrade, never hang. *)
          req ~id ~circuit ~deadline_ms:1e-6
            (Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed })
      | 6 -> req ~id (Serve.Protocol.Stats)
      | _ -> req ~id (Serve.Protocol.Health)
    in
    let clients =
      List.init n_clients (fun client ->
          Thread.create
            (fun () ->
              for i = 0 to per_client - 1 do
                Serve.Server.submit_line t ~reply (request_line ~client ~i)
              done)
            ())
    in
    List.iter Thread.join clients;
    Serve.Server.stop ~drain:false t;
    let replies = List.map decode (all ()) in
    let total = n_clients * per_client in
    (* Zero lost requests: exactly one typed reply each. *)
    Alcotest.(check int) "every request answered exactly once" total
      (List.length replies);
    conservation_holds t;
    let submitted, served, degraded, shed, refused = Serve.Server.counters t in
    Alcotest.(check int) "all submissions counted" total submitted;
    Alcotest.(check bool)
      (Printf.sprintf "work served (%d served, %d degraded, %d shed, %d refused)"
         served degraded shed refused)
      true (served > 0);
    (* Every reply is a known type; every fully-served explicit analyze
       or gradient is Int64-bit-identical to a fresh batch evaluation. *)
    List.iter
      (fun (r : Serve.Protocol.response) ->
        let id =
          match r.id with
          | Serve.Json.Num f -> int_of_float f
          | _ -> Alcotest.failf "reply with unexpected id"
        in
        let client = id / 1000 and i = id mod 1000 in
        let ci = i mod Array.length soak_circuits in
        let net = nets.(ci) in
        match r.payload with
        | Serve.Protocol.Error { code; _ } -> (
            match code with
            | Serve.Protocol.Overloaded | Serve.Protocol.Timeout
            | Serve.Protocol.Quarantined | Serve.Protocol.Breakdown
            | Serve.Protocol.Unconverged | Serve.Protocol.Shutting_down -> ()
            | _ ->
                Alcotest.failf "request %d failed unexpectedly: %s" id
                  (Serve.Protocol.error_code_name code))
        | Serve.Protocol.Analysis _ when i mod 8 <= 1 ->
            let sizes = soak_sizes net ~seed:client ~key:i in
            Alcotest.(check string)
              (Printf.sprintf "request %d bit-identical to batch" id)
              (render (batch_analysis net ~sizes))
              (render r.payload)
        | Serve.Protocol.Gradient_result _ when i mod 8 = 2 ->
            let sizes = soak_sizes net ~seed:client ~key:i in
            let arena = Sta.Arena.create net in
            let res = Sta.Ssta.analyze ~arena ~model net ~sizes in
            let gradient =
              Sta.Ssta.gradient ~arena ~model net ~sizes
                ~seed:(Sta.Ssta.mu_plus_k_sigma_seed 3.)
            in
            let expected =
              Serve.Protocol.Gradient_result
                {
                  value = Statdelay.Normal.mu_plus_k_sigma res.Sta.Ssta.circuit 3.;
                  gradient;
                }
            in
            Alcotest.(check string)
              (Printf.sprintf "gradient %d bit-identical to batch" id)
              (render expected) (render r.payload)
        | Serve.Protocol.Degraded _ when i mod 8 = 5 -> ()
        | _ -> ())
      replies
  end

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "float bits round-trip" `Quick test_json_float_bits;
          Alcotest.test_case "values and parse errors" `Quick
            test_json_values_and_errors;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "request rejects garbage" `Quick
            test_request_rejects_garbage;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
          Alcotest.test_case "shed class order" `Quick test_shed_class_order;
          Alcotest.test_case "error code names" `Quick test_error_code_names;
        ] );
      ( "breaker",
        [ Alcotest.test_case "state machine" `Quick test_breaker_state_machine ] );
      ( "admission",
        [ Alcotest.test_case "shedding policy" `Quick test_admission_shedding ] );
      ( "registry",
        [ Alcotest.test_case "lru and committed sizes" `Quick test_registry_lru ] );
      ( "exec",
        [
          Alcotest.test_case "analyze bit identity" `Quick
            test_exec_analyze_bit_identity;
          Alcotest.test_case "degraded and timeout" `Quick
            test_exec_degraded_and_timeout;
          Alcotest.test_case "bad requests" `Quick test_exec_bad_requests;
          Alcotest.test_case "size commits" `Quick test_exec_size_commits;
        ] );
      ( "server",
        [
          Alcotest.test_case "serves all kinds" `Quick test_server_serves_all_kinds;
          Alcotest.test_case "typed failures" `Quick test_server_typed_failures;
          Alcotest.test_case "shed and drain" `Quick test_server_shed_and_drain;
          Alcotest.test_case "quarantine" `Quick test_server_quarantine;
        ] );
      ( "soak",
        [
          Alcotest.test_case "multi-client under faults (release only)" `Slow
            test_soak_multi_client;
        ] );
    ]
