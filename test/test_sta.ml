(* Tests for deterministic and statistical STA, the adjoint gradient, and
   yield estimation. *)

open Circuit
open Statdelay

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let model = Sigma_model.paper_default

(* ---- Deterministic STA ------------------------------------------------------ *)

let test_dsta_chain_by_hand () =
  (* Chain of 3 identical inverters, all sizes 1: arrival accumulates the
     per-stage delay; the last stage sees only its wire load. *)
  let cell = Cell.make ~name:"inv" ~n_inputs:1 ~t_int:0.2 ~drive:1. ~c_in:0.3 () in
  let n = Generate.chain ~length:3 ~cell ~wire_load:0.5 () in
  let sizes = Netlist.min_sizes n in
  let r = Sta.Dsta.analyze n ~sizes in
  (* stages 0,1 drive an inv (0.3): delay = 0.2 + (0.5 + 0.3) = 1.0;
     stage 2 drives nothing: delay = 0.2 + 0.5 = 0.7 *)
  check_float "stage delay" 1.0 r.Sta.Dsta.gate_delay.(0);
  check_float "last stage" 0.7 r.Sta.Dsta.gate_delay.(2);
  check_float "arrival 0" 1.0 r.Sta.Dsta.arrival.(0);
  check_float "arrival 2 / circuit" 2.7 r.Sta.Dsta.circuit

let test_dsta_sizing_speeds_up () =
  let n = Generate.tree () in
  let slow = (Sta.Dsta.analyze n ~sizes:(Netlist.min_sizes n)).Sta.Dsta.circuit in
  let fast = (Sta.Dsta.analyze n ~sizes:(Netlist.max_sizes n)).Sta.Dsta.circuit in
  Alcotest.(check bool) "max sizes faster" true (fast < slow)

let test_dsta_external_delays () =
  let n = Generate.chain ~length:2 () in
  let r = Sta.Dsta.analyze_with_delays n ~gate_delay:[| 1.; 2. |] in
  check_float "arrival" 3. r.Sta.Dsta.circuit

let test_dsta_pi_arrival () =
  let n = Generate.chain ~length:2 () in
  let base = Sta.Dsta.analyze n ~sizes:(Netlist.min_sizes n) in
  let shifted =
    Sta.Dsta.analyze ~pi_arrival:(fun _ -> 1.5) n ~sizes:(Netlist.min_sizes n)
  in
  check_float ~eps:1e-12 "shifts through" (base.Sta.Dsta.circuit +. 1.5)
    shifted.Sta.Dsta.circuit

let test_dsta_required_and_slack () =
  let n = Generate.chain ~length:3 () in
  let sizes = Netlist.min_sizes n in
  let r = Sta.Dsta.analyze n ~sizes in
  let deadline = r.Sta.Dsta.circuit in
  let slack = Sta.Dsta.slack n ~sizes ~deadline in
  (* Single path: slack is zero everywhere at a tight deadline. *)
  Array.iteri (fun i s -> check_float ~eps:1e-9 (Printf.sprintf "slack %d" i) 0. s) slack;
  let loose = Sta.Dsta.slack n ~sizes ~deadline:(deadline +. 1.) in
  Array.iter (fun s -> check_float ~eps:1e-9 "loose slack" 1. s) loose

let test_dsta_critical_path_chain () =
  let n = Generate.chain ~length:4 () in
  let p = Sta.Dsta.critical_path n ~sizes:(Netlist.min_sizes n) in
  Alcotest.(check (list int)) "whole chain" [ 0; 1; 2; 3 ] p

let test_dsta_critical_path_unbalanced () =
  (* Two parallel branches of different lengths into one gate: the critical
     path goes through the longer branch. *)
  let inv = Cell.make ~name:"inv" ~n_inputs:1 ~c_in:0.2 () in
  let nand2 = Cell.nand 2 in
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_pi b "a" in
  let g0 = Netlist.Builder.add_gate b ~cell:inv [ a ] in
  let g1 = Netlist.Builder.add_gate b ~cell:inv [ g0 ] in
  (* long branch: g0 -> g1 ; short branch: direct PI *)
  let g2 = Netlist.Builder.add_gate b ~cell:nand2 [ g1; a ] in
  Netlist.Builder.mark_po b g2;
  let n = Netlist.Builder.build b in
  let p = Sta.Dsta.critical_path n ~sizes:(Netlist.min_sizes n) in
  Alcotest.(check (list int)) "long branch" [ 0; 1; 2 ] p

(* ---- Statistical STA --------------------------------------------------------- *)

let test_ssta_chain_no_max () =
  (* A chain has no max operations: mean adds, variance adds. *)
  let n = Generate.chain ~length:3 () in
  let sizes = Netlist.min_sizes n in
  let r = Sta.Ssta.analyze ~model n ~sizes in
  let expected_mu = ref 0. and expected_var = ref 0. in
  Array.iter
    (fun (d : Normal.t) ->
      expected_mu := !expected_mu +. Normal.mu d;
      expected_var := !expected_var +. Normal.var d)
    r.Sta.Ssta.gate_delay;
  check_float ~eps:1e-12 "mu adds" !expected_mu (Normal.mu r.Sta.Ssta.circuit);
  check_float ~eps:1e-12 "var adds" !expected_var (Normal.var r.Sta.Ssta.circuit)

let test_ssta_sigma_model_applied () =
  let n = Generate.chain ~length:1 () in
  let sizes = Netlist.min_sizes n in
  let r = Sta.Ssta.analyze ~model n ~sizes in
  let d = r.Sta.Ssta.gate_delay.(0) in
  check_float ~eps:1e-12 "sigma = 0.25 mu" (0.25 *. Normal.mu d) (Normal.sigma d)

let test_ssta_zero_model_matches_dsta () =
  let n = Generate.tree () in
  let sizes = Array.make (Netlist.n_gates n) 2. in
  let s = Sta.Ssta.analyze ~model:Sigma_model.Zero n ~sizes in
  let d = Sta.Dsta.analyze n ~sizes in
  check_float ~eps:1e-9 "circuit mean = deterministic" d.Sta.Dsta.circuit
    (Normal.mu s.Sta.Ssta.circuit);
  check_float "zero variance" 0. (Normal.var s.Sta.Ssta.circuit)

let test_ssta_mu_above_dsta () =
  (* With uncertainty, the statistical mean exceeds the deterministic delay
     (max of distributions shifts up). *)
  let n = Generate.tree () in
  let sizes = Netlist.min_sizes n in
  let s = Sta.Ssta.analyze ~model n ~sizes in
  let d = Sta.Dsta.analyze n ~sizes in
  Alcotest.(check bool) "mu >= deterministic" true
    (Normal.mu s.Sta.Ssta.circuit >= d.Sta.Dsta.circuit -. 1e-12)

let test_ssta_balanced_tree_sigma_shrinks () =
  (* The paper's observation: maxing similar balanced arrivals gives a
     slightly higher mean but a considerably smaller relative sigma than a
     single path. *)
  let n = Generate.tree () in
  let sizes = Netlist.min_sizes n in
  let r = Sta.Ssta.analyze ~model n ~sizes in
  let circuit = r.Sta.Ssta.circuit in
  (* Path A -> C -> G: sum the three gate delays. *)
  let path = List.fold_left
      (fun acc g -> Normal.add acc r.Sta.Ssta.gate_delay.(g))
      (Normal.deterministic 0.) [ 0; 2; 6 ] in
  Alcotest.(check bool) "mu circuit > mu path" true
    (Normal.mu circuit > Normal.mu path);
  Alcotest.(check bool) "sigma circuit < sigma path" true
    (Normal.sigma circuit < Normal.sigma path)

let test_ssta_vs_monte_carlo_tree () =
  let n = Generate.tree () in
  let sizes = Netlist.min_sizes n in
  let r = Sta.Ssta.analyze ~model n ~sizes in
  let samples =
    Sta.Yield.sample_circuit_delays ~rng:(Util.Rng.create 5) ~model n ~sizes ~n:50_000
  in
  let st = Util.Stats.of_array samples in
  Alcotest.(check bool) "mu close" true
    (abs_float (Normal.mu r.Sta.Ssta.circuit -. Util.Stats.mean st) < 0.03);
  Alcotest.(check bool) "sigma close" true
    (abs_float (Normal.sigma r.Sta.Ssta.circuit -. Util.Stats.std_dev st) < 0.03)

let test_ssta_exact_nary_mode () =
  (* On a circuit of 2-input gates every max is already exact, so the
     exact-n-ary analysis agrees with the fold to quadrature accuracy. *)
  let net = Generate.tree () in
  let sizes = Netlist.min_sizes net in
  let folded = Sta.Ssta.analyze ~model net ~sizes in
  let exact = Sta.Ssta.analyze_exact_nary ~model net ~sizes in
  check_float ~eps:1e-6 "mu" (Normal.mu folded.Sta.Ssta.circuit)
    (Normal.mu exact.Sta.Ssta.circuit);
  check_float ~eps:1e-6 "sigma" (Normal.sigma folded.Sta.Ssta.circuit)
    (Normal.sigma exact.Sta.Ssta.circuit);
  (* With 3+ input gates the two differ, but only slightly. *)
  let fig2 = Generate.example_fig2 () in
  let sz = Array.make (Netlist.n_gates fig2) 2. in
  let f = Sta.Ssta.analyze ~model fig2 ~sizes:sz in
  let e = Sta.Ssta.analyze_exact_nary ~model fig2 ~sizes:sz in
  Alcotest.(check bool) "small fold error" true
    (abs_float (Normal.mu f.Sta.Ssta.circuit -. Normal.mu e.Sta.Ssta.circuit) < 0.01)

let test_ssta_pi_arrival_distribution () =
  (* Uncertain primary-input arrivals propagate. *)
  let n = Generate.chain ~length:2 () in
  let sizes = Netlist.min_sizes n in
  let base = Sta.Ssta.analyze ~model n ~sizes in
  let r =
    Sta.Ssta.analyze ~pi_arrival:(fun _ -> Normal.make ~mu:1. ~sigma:0.5) ~model n ~sizes
  in
  check_float ~eps:1e-12 "mean shifted" (Normal.mu base.Sta.Ssta.circuit +. 1.)
    (Normal.mu r.Sta.Ssta.circuit);
  check_float ~eps:1e-12 "variance added" (Normal.var base.Sta.Ssta.circuit +. 0.25)
    (Normal.var r.Sta.Ssta.circuit)

(* ---- Adjoint gradients --------------------------------------------------------- *)

let fd_check ?(rtol = 1e-4) ?(atol = 1e-7) net sizes k =
  let f s =
    let r = Sta.Ssta.analyze ~model net ~sizes:s in
    Normal.mu r.Sta.Ssta.circuit +. (k *. Normal.sigma r.Sta.Ssta.circuit)
  in
  let grad =
    Sta.Ssta.gradient ~model net ~sizes ~seed:(Sta.Ssta.mu_plus_k_sigma_seed k)
  in
  let fd = Util.Numerics.fd_gradient ~h:1e-6 f sizes in
  Array.iteri
    (fun i a ->
      if not (Util.Numerics.approx_eq ~rtol ~atol a fd.(i)) then
        Alcotest.failf "gate %d (k=%g): adjoint %.8f vs fd %.8f" i k a fd.(i))
    grad

let interior_sizes net rng =
  Array.init (Netlist.n_gates net) (fun _ -> Util.Rng.uniform rng ~lo:1.2 ~hi:2.8)

let test_gradient_fd_tree () =
  let net = Generate.tree () in
  let rng = Util.Rng.create 42 in
  List.iter (fun k -> fd_check net (interior_sizes net rng) k) [ 0.; 1.; 3. ]

let test_gradient_fd_fig2 () =
  let net = Generate.example_fig2 () in
  let rng = Util.Rng.create 43 in
  List.iter (fun k -> fd_check net (interior_sizes net rng) k) [ 0.; 3. ]

let test_gradient_fd_chain () =
  let net = Generate.chain ~length:6 () in
  let rng = Util.Rng.create 44 in
  fd_check net (interior_sizes net rng) 1.

let test_gradient_fd_random_dag () =
  let net = Generate.random_dag { Generate.default_spec with Generate.n_gates = 40; seed = 12 } in
  let rng = Util.Rng.create 45 in
  fd_check net (interior_sizes net rng) 3.

let test_gradient_fd_multi_po () =
  (* Circuit with several POs exercises the PO-fold backprop. *)
  let net = Generate.random_dag { Generate.default_spec with Generate.n_gates = 30; seed = 77 } in
  Alcotest.(check bool) "has multiple pos" true (Netlist.n_pos net > 1);
  let rng = Util.Rng.create 46 in
  fd_check net (interior_sizes net rng) 1.

let test_gradient_sigma_seed_fd () =
  let net = Generate.tree () in
  let rng = Util.Rng.create 47 in
  let sizes = interior_sizes net rng in
  let f s =
    let r = Sta.Ssta.analyze ~model net ~sizes:s in
    Normal.sigma r.Sta.Ssta.circuit
  in
  let grad = Sta.Ssta.gradient ~model net ~sizes ~seed:Sta.Ssta.sigma_seed in
  let fd = Util.Numerics.fd_gradient ~h:1e-6 f sizes in
  Array.iteri
    (fun i a ->
      if not (Util.Numerics.approx_eq ~rtol:1e-4 ~atol:1e-7 a fd.(i)) then
        Alcotest.failf "sigma grad gate %d: %.8f vs %.8f" i a fd.(i))
    grad

let test_gradient_min_delay_negative_at_min_sizes () =
  (* At all-minimum sizes, upsizing any gate on the critical cone should
     not increase the mean delay: gradient entries are <= small tolerance
     everywhere for a fanout-free tree. *)
  let net = Generate.tree () in
  let sizes = Netlist.min_sizes net in
  let grad =
    Sta.Ssta.gradient ~model net ~sizes ~seed:(Sta.Ssta.mu_plus_k_sigma_seed 0.)
  in
  Array.iteri
    (fun i g ->
      if g > 1e-9 then Alcotest.failf "gate %d has positive gradient %.6f" i g)
    grad

let test_value_and_gradient_consistent () =
  let net = Generate.tree () in
  let sizes = Array.make (Netlist.n_gates net) 2. in
  let res, grad =
    Sta.Ssta.value_and_gradient ~model net ~sizes ~seed:(Sta.Ssta.mu_plus_k_sigma_seed 0.)
  in
  let res2 = Sta.Ssta.analyze ~model net ~sizes in
  check_float ~eps:1e-15 "same mu" (Normal.mu res2.Sta.Ssta.circuit)
    (Normal.mu res.Sta.Ssta.circuit);
  let grad2 =
    Sta.Ssta.gradient ~model net ~sizes ~seed:(Sta.Ssta.mu_plus_k_sigma_seed 0.)
  in
  Alcotest.(check (array (float 1e-15))) "same gradient" grad2 grad

(* ---- Yield ------------------------------------------------------------------------ *)

let test_yield_analytic () =
  let c = Normal.make ~mu:10. ~sigma:1. in
  check_float ~eps:1e-12 "at mean" 0.5 (Sta.Yield.analytic c ~deadline:10.);
  check_float ~eps:1e-9 "at +1 sigma" 0.841344746068543 (Sta.Yield.analytic c ~deadline:11.);
  check_float ~eps:1e-9 "at +3 sigma" 0.998650101968370 (Sta.Yield.analytic c ~deadline:13.)

let test_yield_monte_carlo_matches_analytic_tree () =
  let net = Generate.tree () in
  let sizes = Netlist.min_sizes net in
  let r = Sta.Ssta.analyze ~model net ~sizes in
  let deadline = Normal.mu r.Sta.Ssta.circuit +. Normal.sigma r.Sta.Ssta.circuit in
  let mc =
    Sta.Yield.monte_carlo ~rng:(Util.Rng.create 8) ~model net ~sizes ~deadline ~n:40_000
  in
  let analytic = Sta.Yield.analytic r.Sta.Ssta.circuit ~deadline in
  Alcotest.(check bool) "within 2%" true (abs_float (mc -. analytic) < 0.02)

let test_yield_monotone_in_deadline () =
  let net = Generate.tree () in
  let sizes = Netlist.min_sizes net in
  let rng = Util.Rng.create 9 in
  let y d = Sta.Yield.monte_carlo ~rng:(Util.Rng.copy rng) ~model net ~sizes ~deadline:d ~n:5_000 in
  let r = Sta.Ssta.analyze ~model net ~sizes in
  let mu = Normal.mu r.Sta.Ssta.circuit in
  Alcotest.(check bool) "ordered" true (y (0.8 *. mu) <= y mu && y mu <= y (1.2 *. mu))

let test_yield_shape_families_moment_matched () =
  (* The alternative gate-delay families must actually match the first two
     moments; checked on a single-gate circuit where the circuit delay IS
     the gate delay. *)
  let net = Generate.chain ~length:1 () in
  let sizes = Netlist.min_sizes net in
  let d = (Sta.Ssta.analyze ~model net ~sizes).Sta.Ssta.gate_delay.(0) in
  List.iter
    (fun (name, shape) ->
      let samples =
        Sta.Yield.sample_circuit_delays ~rng:(Util.Rng.create 31) ~shape ~model net
          ~sizes ~n:200_000
      in
      let st = Util.Stats.of_array samples in
      if abs_float (Util.Stats.mean st -. Normal.mu d) > 0.01 then
        Alcotest.failf "%s: mean %.4f vs %.4f" name (Util.Stats.mean st) (Normal.mu d);
      if abs_float (Util.Stats.std_dev st -. Normal.sigma d) > 0.01 then
        Alcotest.failf "%s: sd %.4f vs %.4f" name (Util.Stats.std_dev st)
          (Normal.sigma d))
    [
      ("gaussian", Sta.Yield.Gaussian);
      ("uniform", Sta.Yield.Uniform);
      ("exponential", Sta.Yield.Shifted_exponential);
      ("two-point", Sta.Yield.Two_point);
    ]

let test_yield_shape_irrelevance_for_mean () =
  (* Section 3's claim, tested: the circuit-level mean is insensitive to
     the element distribution's shape (same moments). *)
  let net = Generate.tree () in
  let sizes = Netlist.min_sizes net in
  let reference = (Sta.Ssta.analyze ~model net ~sizes).Sta.Ssta.circuit in
  List.iter
    (fun shape ->
      let samples =
        Sta.Yield.sample_circuit_delays ~rng:(Util.Rng.create 32) ~shape ~model net
          ~sizes ~n:40_000
      in
      let st = Util.Stats.of_array samples in
      let rel = abs_float (Util.Stats.mean st -. Normal.mu reference) /. Normal.mu reference in
      if rel > 0.015 then Alcotest.failf "circuit mean off by %.2f%%" (100. *. rel))
    [ Sta.Yield.Uniform; Sta.Yield.Shifted_exponential; Sta.Yield.Two_point ]

(* ---- Criticality ------------------------------------------------------------------ *)

let test_crit_chain_all_critical () =
  (* A chain has exactly one path: every gate is critical in every sample. *)
  let net = Generate.chain ~length:5 () in
  let r = Sta.Crit.monte_carlo ~model net ~sizes:(Netlist.min_sizes net) ~n:500 in
  Array.iter (fun c -> check_float "always critical" 1. c) r.Sta.Crit.criticality

let test_crit_balanced_tree_split () =
  (* Balanced tree: root always critical; each mid-level gate ~50%; each
     leaf ~25%. *)
  let net = Generate.tree () in
  let r = Sta.Crit.monte_carlo ~model net ~sizes:(Netlist.min_sizes net) ~n:20_000 in
  let c = r.Sta.Crit.criticality in
  check_float ~eps:1e-9 "root" 1. c.(6);
  List.iter
    (fun mid ->
      if abs_float (c.(mid) -. 0.5) > 0.03 then
        Alcotest.failf "mid gate %d criticality %.3f (expected ~0.5)" mid c.(mid))
    [ 2; 5 ];
  List.iter
    (fun leaf ->
      if abs_float (c.(leaf) -. 0.25) > 0.03 then
        Alcotest.failf "leaf gate %d criticality %.3f (expected ~0.25)" leaf c.(leaf))
    [ 0; 1; 3; 4 ]

let test_crit_sums_and_ranking () =
  let net = Generate.tree () in
  let r = Sta.Crit.monte_carlo ~model net ~sizes:(Netlist.min_sizes net) ~n:2_000 in
  Array.iter
    (fun c ->
      if c < 0. || c > 1. then Alcotest.failf "criticality %.3f out of range" c)
    r.Sta.Crit.criticality;
  match Sta.Crit.ranked r net with
  | (top, c) :: _ ->
      Alcotest.(check string) "root ranked first" "G" top;
      check_float ~eps:1e-9 "root always critical" 1. c
  | [] -> Alcotest.fail "empty ranking"

let test_crit_invalid_n () =
  let net = Generate.tree () in
  Alcotest.check_raises "n=0" (Invalid_argument "Crit.monte_carlo: n must be positive")
    (fun () ->
      ignore (Sta.Crit.monte_carlo ~model net ~sizes:(Netlist.min_sizes net) ~n:0))

(* ---- Perturbation cone locality ---------------------------------------------------- *)

(* Resizing one gate only changes the delay model inside a well-defined
   region: the gate itself and its gate fanin drivers (whose load includes
   the resized input capacitance) get new delays, and arrivals can change
   only in the transitive fanout of that affected set.  Everything outside
   keeps its timing bit-for-bit — the structural fact the incremental
   engine's dirty-cone rule (Sta.Incr) relies on. *)

let bits = Int64.bits_of_float
let same_bits a b = bits a = bits b

let same_normal_bits a b =
  same_bits (Normal.mu a) (Normal.mu b) && same_bits (Normal.var a) (Normal.var b)

let gate_id = function Netlist.Gate g -> g | Netlist.Pi _ -> Alcotest.fail "expected gate"

let fanout_cone net seeds =
  let inside = Array.make (Netlist.n_gates net) false in
  let rec visit g =
    if not inside.(g) then begin
      inside.(g) <- true;
      List.iter (fun (c, _) -> visit c) (Netlist.fanout net g)
    end
  in
  List.iter visit seeds;
  inside

let fanin_cone net seeds =
  let inside = Array.make (Netlist.n_gates net) false in
  let rec visit g =
    if not inside.(g) then begin
      inside.(g) <- true;
      Array.iter
        (function Netlist.Gate s -> visit s | Netlist.Pi _ -> ())
        (Netlist.gate net g).Netlist.fanin
    end
  in
  List.iter visit seeds;
  inside

(* Gates whose own delay changes when gate [p] is resized. *)
let affected_by net p =
  let drivers =
    Array.to_list (Netlist.gate net p).Netlist.fanin
    |> List.filter_map (function Netlist.Gate s -> Some s | Netlist.Pi _ -> None)
  in
  p :: drivers

let prop_perturbation_locality =
  QCheck.Test.make ~count:20 ~name:"single-gate perturbation stays in its fanout cone"
    QCheck.(pair small_nat small_nat)
    (fun (net_seed, pert_seed) ->
      let net =
        Generate.random_dag
          { Generate.default_spec with Generate.n_gates = 50; seed = 300 + net_seed }
      in
      let n = Netlist.n_gates net in
      let maxs = Netlist.max_sizes net in
      let rng = Util.Rng.create (7 * pert_seed) in
      let sizes =
        Array.init n (fun g -> Util.Rng.uniform rng ~lo:1. ~hi:(0.9 *. maxs.(g)))
      in
      let p = Util.Rng.int rng n in
      let sizes' = Array.copy sizes in
      sizes'.(p) <- Util.Rng.uniform rng ~lo:1. ~hi:maxs.(p);
      let affected = affected_by net p in
      let cone = fanout_cone net affected in
      let in_affected = Array.make n false in
      List.iter (fun g -> in_affected.(g) <- true) affected;
      let s0 = Sta.Ssta.analyze ~model net ~sizes in
      let s1 = Sta.Ssta.analyze ~model net ~sizes:sizes' in
      let d0 = Sta.Dsta.analyze net ~sizes in
      let d1 = Sta.Dsta.analyze net ~sizes:sizes' in
      for g = 0 to n - 1 do
        if (not in_affected.(g))
           && not (same_normal_bits s0.Sta.Ssta.gate_delay.(g) s1.Sta.Ssta.gate_delay.(g))
        then
          QCheck.Test.fail_reportf "gate %d delay changed outside affected set" g;
        if not cone.(g) then begin
          if not (same_normal_bits s0.Sta.Ssta.arrival.(g) s1.Sta.Ssta.arrival.(g)) then
            QCheck.Test.fail_reportf "gate %d ssta arrival changed outside cone" g;
          if not (same_bits d0.Sta.Dsta.arrival.(g) d1.Sta.Dsta.arrival.(g)) then
            QCheck.Test.fail_reportf "gate %d dsta arrival changed outside cone" g
        end
      done;
      true)

let test_slack_unchanged_outside_cones () =
  (* Slack mixes a forward pass (arrival) with a backward pass (required),
     so it is invariant outside the union of the affected set's fanout
     cone (arrival unchanged) and fanin cone (required unchanged). *)
  let net =
    Generate.random_dag { Generate.default_spec with Generate.n_gates = 60; seed = 5 }
  in
  let n = Netlist.n_gates net in
  let sizes = Netlist.min_sizes net in
  let p = n / 2 in
  let sizes' = Array.copy sizes in
  sizes'.(p) <- 2.5;
  let affected = affected_by net p in
  let out_cone = fanout_cone net affected and in_cone = fanin_cone net affected in
  let deadline = (Sta.Dsta.analyze net ~sizes).Sta.Dsta.circuit +. 2. in
  let s0 = Sta.Dsta.slack net ~sizes ~deadline in
  let s1 = Sta.Dsta.slack net ~sizes:sizes' ~deadline in
  let untouched = ref 0 and changed = ref 0 in
  for g = 0 to n - 1 do
    if (not out_cone.(g)) && not in_cone.(g) then begin
      incr untouched;
      if not (same_bits s0.(g) s1.(g)) then
        Alcotest.failf "gate %d slack changed outside both cones" g
    end
    else if not (same_bits s0.(g) s1.(g)) then incr changed
  done;
  Alcotest.(check bool) "some gates outside both cones" true (!untouched > 0);
  Alcotest.(check bool) "perturbation actually moved some slack" true (!changed > 0)

(* A netlist with two structurally disjoint components: A is a NAND tree
   over 8 PIs feeding a 6-stage inverter chain (deep, always the latest
   PO by a ~9 sigma margin), B is a short 2-inverter chain. *)
let two_component_net () =
  let nand2 = Cell.nand 2 in
  let inv = Cell.make ~name:"inv" ~n_inputs:1 ~c_in:0.25 () in
  let b = Netlist.Builder.create ~name:"two-comp" () in
  let pis =
    Array.init 8 (fun i -> Netlist.Builder.add_pi b (Printf.sprintf "a%d" i))
  in
  let rec reduce = function
    | [] -> Alcotest.fail "empty reduction"
    | [ x ] -> x
    | xs ->
        let rec pair = function
          | x :: y :: tl -> Netlist.Builder.add_gate b ~cell:nand2 [ x; y ] :: pair tl
          | tl -> tl
        in
        reduce (pair xs)
  in
  let root = ref (reduce (Array.to_list pis)) in
  for _ = 1 to 6 do
    root := Netlist.Builder.add_gate b ~cell:inv [ !root ]
  done;
  Netlist.Builder.mark_po b !root;
  let bp = Netlist.Builder.add_pi b "b0" in
  let b1 = Netlist.Builder.add_gate b ~cell:inv [ bp ] in
  let b2 = Netlist.Builder.add_gate b ~cell:inv [ b1 ] in
  Netlist.Builder.mark_po b b2;
  (Netlist.Builder.build b, gate_id b1, gate_id b2)

let test_crit_unchanged_outside_perturbed_cone () =
  let net, b1, b2 = two_component_net () in
  let n = Netlist.n_gates net in
  let sizes = Netlist.min_sizes net in
  let sizes' = Array.copy sizes in
  sizes'.(b2) <- 2.5;
  let cone = fanout_cone net (affected_by net b2) in
  Alcotest.(check bool) "cone is exactly component B" true
    (Array.to_list (Array.mapi (fun g c -> (g, c)) cone)
    |> List.for_all (fun (g, c) -> c = (g = b1 || g = b2)));
  (* Same seed on both runs: per-gate delay draws consume the same
     uniforms whatever mu/sigma they are scaled by, so samples for
     unperturbed gates are bitwise identical across the two estimates. *)
  let c0 = Sta.Crit.monte_carlo ~rng:(Util.Rng.create 123) ~model net ~sizes ~n:4_000 in
  let c1 =
    Sta.Crit.monte_carlo ~rng:(Util.Rng.create 123) ~model net ~sizes:sizes' ~n:4_000
  in
  let nondegenerate = ref 0 in
  for g = 0 to n - 1 do
    if not cone.(g) then begin
      if not (same_bits c0.Sta.Crit.criticality.(g) c1.Sta.Crit.criticality.(g)) then
        Alcotest.failf "gate %d criticality changed outside the perturbed cone" g;
      let c = c0.Sta.Crit.criticality.(g) in
      if c > 0.05 && c < 0.95 then incr nondegenerate
    end
    else
      check_float ~eps:1e-9 "B gates never traced (off the critical component)" 0.
        c1.Sta.Crit.criticality.(g)
  done;
  Alcotest.(check bool) "comparison covers fractional criticalities" true
    (!nondegenerate >= 4)

let test_crit_rng_determinism () =
  let net = Generate.tree () in
  let sizes = Netlist.min_sizes net in
  let run () =
    Sta.Crit.monte_carlo ~rng:(Util.Rng.create 77) ~model net ~sizes ~n:1_000
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same sample count" a.Sta.Crit.samples b.Sta.Crit.samples;
  Array.iteri
    (fun g c ->
      if not (same_bits c b.Sta.Crit.criticality.(g)) then
        Alcotest.failf "gate %d criticality not reproducible" g)
    a.Sta.Crit.criticality

(* ---- Cssta / Corner differential tests -------------------------------------- *)

(* Shared circuit set for the satellite-engine differential tests: the
   same nets at the same (non-trivially sized) operating points, so the
   unit tests here exercise exactly what the sim harness's
   `cssta-vs-ssta` / `corner-envelope` invariants check per-op. *)
let differential_circuits () =
  let sized net =
    let mins = Netlist.min_sizes net and maxs = Netlist.max_sizes net in
    let sizes =
      Array.init (Netlist.n_gates net) (fun i ->
          mins.(i) +. (0.3 *. (maxs.(i) -. mins.(i))))
    in
    (net, sizes)
  in
  [
    ("tree", sized (Generate.tree ()));
    ("chain", sized (Generate.chain ()));
    ("fig2", sized (Generate.example_fig2 ()));
    ( "dag120",
      sized
        (Generate.random_dag
           { Generate.default_spec with Generate.n_gates = 120; n_pis = 15; seed = 7 })
    );
  ]

let same_bits_f a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* The independence-assumption half of Cssta.compare_to_independent IS
   the Ssta analysis: bit-identical circuit moments on every shared
   circuit. *)
let test_cssta_independent_half_is_ssta () =
  List.iter
    (fun (name, (net, sizes)) ->
      let ind, _ = Sta.Cssta.compare_to_independent ~model net ~sizes in
      let ssta = (Sta.Ssta.analyze ~model net ~sizes).Sta.Ssta.circuit in
      if
        not
          (same_bits_f ind.Normal.mu ssta.Normal.mu
          && same_bits_f ind.Normal.var ssta.Normal.var)
      then
        Alcotest.failf "%s: independent half (%h, %h) <> ssta (%h, %h)" name
          ind.Normal.mu ind.Normal.var ssta.Normal.mu ssta.Normal.var)
    (differential_circuits ())

(* Without reconvergent fanout (chains, trees) the correlation-aware
   analysis must agree with the independence assumption: there is
   nothing to be correlated about. *)
let test_cssta_equals_ssta_without_reconvergence () =
  List.iter
    (fun (name, (net, sizes)) ->
      let ind, corr = Sta.Cssta.compare_to_independent ~model net ~sizes in
      check_float ~eps:1e-9 (name ^ ": mu") ind.Normal.mu corr.Normal.mu;
      check_float ~eps:1e-9 (name ^ ": var") ind.Normal.var corr.Normal.var)
    [
      ("tree", List.assoc "tree" (differential_circuits ()));
      ("chain", List.assoc "chain" (differential_circuits ()));
    ]

(* Correlation matrices are correlation matrices: symmetric, entries in
   [-1, 1], unit diagonal for gates with arrival variance. *)
let test_cssta_matrix_sane_on_shared_circuits () =
  List.iter
    (fun (name, (net, sizes)) ->
      let res = Sta.Cssta.analyze ~model net ~sizes in
      let c = res.Sta.Cssta.correlation in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j r ->
              if abs_float r > 1. +. 1e-9 then
                Alcotest.failf "%s: correlation.(%d).(%d) = %h" name i j r;
              if abs_float (r -. c.(j).(i)) > 1e-12 then
                Alcotest.failf "%s: correlation not symmetric at (%d,%d)" name i j)
            row;
          let arr = res.Sta.Cssta.arrival.(i) in
          if arr.Normal.var > 1e-15 && abs_float (c.(i).(i) -. 1.) > 1e-9 then
            Alcotest.failf "%s: diagonal %d = %h" name i c.(i).(i))
        c)
    (differential_circuits ())

(* Corner analysis against Ssta/Dsta on the shared circuits: envelope
   order, typical = deterministic, statistical mean dominates typical
   (Clark's max mean dominates the max of means), guard band monotone
   in k. *)
let test_corner_vs_ssta_on_shared_circuits () =
  List.iter
    (fun (name, (net, sizes)) ->
      let c1 = Sta.Corner.analyze ~k:1. ~model net ~sizes in
      let c3 = Sta.Corner.analyze ~k:3. ~model net ~sizes in
      Alcotest.(check bool)
        (name ^ ": best <= typical <= worst")
        true
        (c3.Sta.Corner.best <= c3.Sta.Corner.typical
        && c3.Sta.Corner.typical <= c3.Sta.Corner.worst);
      let d = Sta.Dsta.analyze net ~sizes in
      check_float ~eps:1e-9 (name ^ ": typical = dsta") d.Sta.Dsta.circuit
        c3.Sta.Corner.typical;
      let ssta = (Sta.Ssta.analyze ~model net ~sizes).Sta.Ssta.circuit in
      Alcotest.(check bool)
        (name ^ ": statistical mean above typical")
        true
        (ssta.Normal.mu >= c3.Sta.Corner.typical -. 1e-9);
      Alcotest.(check bool)
        (name ^ ": guard band monotone in k")
        true
        (c3.Sta.Corner.worst >= c1.Sta.Corner.worst -. 1e-12
        && c3.Sta.Corner.best <= c1.Sta.Corner.best +. 1e-12))
    (differential_circuits ())

(* With the Zero sigma model the three corners and the statistical
   analysis all collapse onto the deterministic delay. *)
let test_corner_zero_model_collapses_to_ssta () =
  List.iter
    (fun (name, (net, sizes)) ->
      let c = Sta.Corner.analyze ~model:Sigma_model.Zero net ~sizes in
      let s = (Sta.Ssta.analyze ~model:Sigma_model.Zero net ~sizes).Sta.Ssta.circuit in
      check_float ~eps:1e-9 (name ^ ": best = worst") c.Sta.Corner.best
        c.Sta.Corner.worst;
      check_float ~eps:1e-9 (name ^ ": statistical = typical") c.Sta.Corner.typical
        s.Normal.mu;
      check_float ~eps:1e-12 (name ^ ": zero variance") 0. s.Normal.var)
    (differential_circuits ())

let () =
  Alcotest.run "sta"
    [
      ( "dsta",
        [
          Alcotest.test_case "chain by hand" `Quick test_dsta_chain_by_hand;
          Alcotest.test_case "sizing speeds up" `Quick test_dsta_sizing_speeds_up;
          Alcotest.test_case "external delays" `Quick test_dsta_external_delays;
          Alcotest.test_case "pi arrival" `Quick test_dsta_pi_arrival;
          Alcotest.test_case "required / slack" `Quick test_dsta_required_and_slack;
          Alcotest.test_case "critical path chain" `Quick test_dsta_critical_path_chain;
          Alcotest.test_case "critical path unbalanced" `Quick
            test_dsta_critical_path_unbalanced;
        ] );
      ( "ssta",
        [
          Alcotest.test_case "chain adds" `Quick test_ssta_chain_no_max;
          Alcotest.test_case "sigma model applied" `Quick test_ssta_sigma_model_applied;
          Alcotest.test_case "zero model = dsta" `Quick test_ssta_zero_model_matches_dsta;
          Alcotest.test_case "mu above deterministic" `Quick test_ssta_mu_above_dsta;
          Alcotest.test_case "balanced tree shrinks sigma" `Quick
            test_ssta_balanced_tree_sigma_shrinks;
          Alcotest.test_case "matches Monte Carlo (tree)" `Slow test_ssta_vs_monte_carlo_tree;
          Alcotest.test_case "pi arrival distribution" `Quick test_ssta_pi_arrival_distribution;
          Alcotest.test_case "exact n-ary mode" `Quick test_ssta_exact_nary_mode;
        ] );
      ( "gradient",
        [
          Alcotest.test_case "fd tree" `Quick test_gradient_fd_tree;
          Alcotest.test_case "fd fig2" `Quick test_gradient_fd_fig2;
          Alcotest.test_case "fd chain" `Quick test_gradient_fd_chain;
          Alcotest.test_case "fd random dag" `Quick test_gradient_fd_random_dag;
          Alcotest.test_case "fd multi-po" `Quick test_gradient_fd_multi_po;
          Alcotest.test_case "fd sigma seed" `Quick test_gradient_sigma_seed_fd;
          Alcotest.test_case "descent at min sizes" `Quick
            test_gradient_min_delay_negative_at_min_sizes;
          Alcotest.test_case "value_and_gradient consistent" `Quick
            test_value_and_gradient_consistent;
        ] );
      ( "yield",
        [
          Alcotest.test_case "analytic" `Quick test_yield_analytic;
          Alcotest.test_case "mc matches analytic" `Slow
            test_yield_monte_carlo_matches_analytic_tree;
          Alcotest.test_case "monotone in deadline" `Quick test_yield_monotone_in_deadline;
          Alcotest.test_case "shape families moment-matched" `Slow
            test_yield_shape_families_moment_matched;
          Alcotest.test_case "shape irrelevance for mean" `Slow
            test_yield_shape_irrelevance_for_mean;
        ] );
      ( "corner",
        [
          Alcotest.test_case "ordering" `Quick (fun () ->
              let net = Generate.tree () in
              let sizes = Netlist.min_sizes net in
              let c = Sta.Corner.analyze ~model net ~sizes in
              Alcotest.(check bool) "best < typical < worst" true
                (c.Sta.Corner.best < c.Sta.Corner.typical
                && c.Sta.Corner.typical < c.Sta.Corner.worst));
          Alcotest.test_case "typical = deterministic" `Quick (fun () ->
              let net = Generate.tree () in
              let sizes = Netlist.min_sizes net in
              let c = Sta.Corner.analyze ~model net ~sizes in
              let d = Sta.Dsta.analyze net ~sizes in
              check_float ~eps:1e-9 "typical" d.Sta.Dsta.circuit c.Sta.Corner.typical);
          Alcotest.test_case "zero model collapses corners" `Quick (fun () ->
              let net = Generate.tree () in
              let sizes = Netlist.min_sizes net in
              let c = Sta.Corner.analyze ~model:Sigma_model.Zero net ~sizes in
              check_float ~eps:1e-9 "best = worst" c.Sta.Corner.best c.Sta.Corner.worst);
          Alcotest.test_case "pessimism vs statistical" `Slow (fun () ->
              let net = Generate.tree () in
              let sizes = Netlist.min_sizes net in
              let p = Sta.Corner.pessimism ~model net ~sizes ~samples:10_000 in
              Alcotest.(check bool) "worst corner above statistical" true
                (p.Sta.Corner.corners.Sta.Corner.worst > p.Sta.Corner.statistical);
              Alcotest.(check bool) "overestimates reality" true
                (p.Sta.Corner.overestimate > 1.05);
              Alcotest.(check bool) "statistical tracks MC" true
                (abs_float (p.Sta.Corner.statistical -. p.Sta.Corner.monte_carlo_quantile)
                 /. p.Sta.Corner.monte_carlo_quantile
                < 0.02));
        ] );
      ( "differential",
        [
          Alcotest.test_case "cssta independent half = ssta" `Quick
            test_cssta_independent_half_is_ssta;
          Alcotest.test_case "cssta = ssta without reconvergence" `Quick
            test_cssta_equals_ssta_without_reconvergence;
          Alcotest.test_case "cssta matrix sane" `Quick
            test_cssta_matrix_sane_on_shared_circuits;
          Alcotest.test_case "corner vs ssta" `Quick
            test_corner_vs_ssta_on_shared_circuits;
          Alcotest.test_case "zero model collapses" `Quick
            test_corner_zero_model_collapses_to_ssta;
        ] );
      ( "criticality",
        [
          Alcotest.test_case "chain all critical" `Quick test_crit_chain_all_critical;
          Alcotest.test_case "balanced tree split" `Slow test_crit_balanced_tree_split;
          Alcotest.test_case "range and ranking" `Quick test_crit_sums_and_ranking;
          Alcotest.test_case "invalid n" `Quick test_crit_invalid_n;
        ] );
      ( "cone locality",
        [
          Seed_info.to_alcotest prop_perturbation_locality;
          Alcotest.test_case "slack outside both cones" `Quick
            test_slack_unchanged_outside_cones;
          Alcotest.test_case "criticality outside perturbed cone" `Quick
            test_crit_unchanged_outside_perturbed_cone;
          Alcotest.test_case "criticality rng determinism" `Quick
            test_crit_rng_determinism;
        ] );
    ]
