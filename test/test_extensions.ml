(* Tests for the future-work extensions: exact n-ary max (Nary),
   correlated max (Correlation), correlation-aware SSTA (Cssta), switching
   activity (Activity) and the weighted power objective. *)

open Statdelay

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

let model = Circuit.Sigma_model.paper_default

(* ---- Gauss-Hermite quadrature -------------------------------------------- *)

let test_gh_polynomial_exactness () =
  (* The n-point rule integrates polynomials up to degree 2n-1 exactly:
     int x^k e^{-x^2} = 0 (odd), Gamma((k+1)/2) (even). *)
  let nodes, weights = Nary.gauss_hermite 12 in
  let integral k =
    let acc = ref 0. in
    Array.iteri (fun i x -> acc := !acc +. (weights.(i) *. (x ** float_of_int k))) nodes;
    !acc
  in
  let sqrt_pi = sqrt Float.pi in
  check_float ~eps:1e-12 "k=0" sqrt_pi (integral 0);
  check_float ~eps:1e-12 "k=1" 0. (integral 1);
  check_float ~eps:1e-12 "k=2" (sqrt_pi /. 2.) (integral 2);
  check_float ~eps:1e-12 "k=4" (3. *. sqrt_pi /. 4.) (integral 4);
  check_float ~eps:1e-11 "k=6" (15. *. sqrt_pi /. 8.) (integral 6)

let test_gh_bounds () =
  Alcotest.check_raises "n=0" (Invalid_argument "Nary.gauss_hermite: need 1 <= n <= 180")
    (fun () -> ignore (Nary.gauss_hermite 0));
  let nodes, weights = Nary.gauss_hermite 1 in
  check_float "single node" 0. nodes.(0);
  check_float ~eps:1e-12 "single weight" (sqrt Float.pi) weights.(0)

let test_gh_nodes_sorted_symmetric () =
  let nodes, weights = Nary.gauss_hermite 17 in
  for i = 1 to 16 do
    if nodes.(i) <= nodes.(i - 1) then Alcotest.fail "nodes not increasing"
  done;
  for i = 0 to 16 do
    check_float ~eps:1e-12 "node symmetry" (-.nodes.(i)) nodes.(16 - i);
    check_float ~eps:1e-12 "weight symmetry" weights.(i) weights.(16 - i)
  done

let test_expectation_moments () =
  let x = Normal.make ~mu:3. ~sigma:2. in
  check_float ~eps:1e-10 "E[X]" 3. (Nary.expectation (fun v -> v) x);
  check_float ~eps:1e-10 "E[X^2]" 13. (Nary.expectation (fun v -> v *. v) x);
  (* degenerate *)
  check_float "point mass" 49.
    (Nary.expectation (fun v -> v *. v) (Normal.deterministic 7.))

(* ---- exact n-ary max -------------------------------------------------------- *)

let test_nary_matches_clark_for_two () =
  List.iter
    (fun (ma, sa, mb, sb) ->
      let a = Normal.make ~mu:ma ~sigma:sa and b = Normal.make ~mu:mb ~sigma:sb in
      let exact = Nary.max_list [ a; b ] in
      let clark = Clark.max2 a b in
      check_float ~eps:1e-8 "mu" (Normal.mu clark) (Normal.mu exact);
      check_float ~eps:1e-8 "sigma" (Normal.sigma clark) (Normal.sigma exact))
    [ (0., 1., 0., 1.); (1., 0.3, 1.2, 0.5); (2., 0.1, 0., 1.) ]

let test_nary_vs_monte_carlo () =
  let ops =
    List.init 6 (fun i -> Normal.make ~mu:(1. +. (0.05 *. float_of_int i)) ~sigma:0.3)
  in
  let exact = Nary.max_list ops in
  let rng = Util.Rng.create 5 in
  let samples = Mc.sample_max_list rng ops ~n:500_000 in
  let st = Util.Stats.of_array samples in
  Alcotest.(check bool) "mu" true (abs_float (Normal.mu exact -. Util.Stats.mean st) < 0.005);
  Alcotest.(check bool) "sigma" true
    (abs_float (Normal.sigma exact -. Util.Stats.std_dev st) < 0.005)

let test_nary_point_masses_only () =
  let c = Nary.max_list [ Normal.deterministic 2.; Normal.deterministic 5. ] in
  check_float "mu" 5. (Normal.mu c);
  check_float "var" 0. (Normal.var c)

let test_nary_mixed_point_mass () =
  (* max(1.1, N(1, 0.2^2)): censored-normal moments, checked against the
     closed form E = m Phi(a) + mu Phi(-a) + s phi(a), a = (m - mu)/s. *)
  let m = 1.1 and mu = 1.0 and s = 0.2 in
  let a = (m -. mu) /. s in
  let e1 =
    (m *. Util.Special.normal_cdf a)
    +. (mu *. Util.Special.normal_cdf (-.a))
    +. (s *. Util.Special.normal_pdf a)
  in
  let c = Nary.max_list [ Normal.deterministic m; Normal.make ~mu ~sigma:s ] in
  check_float ~eps:1e-6 "censored mean" e1 (Normal.mu c);
  Alcotest.(check bool) "positive sigma" true (Normal.sigma c > 0.01)

let test_nary_fold_error_grows () =
  let ops n =
    List.init n (fun i -> Normal.make ~mu:(1. +. (0.02 *. float_of_int i)) ~sigma:0.25)
  in
  let _, s4 = Nary.fold_error (ops 4) in
  let _, s12 = Nary.fold_error (ops 12) in
  Alcotest.(check bool) "sigma error grows with n" true (s12 > s4);
  let _, s2 = Nary.fold_error (ops 2) in
  Alcotest.(check bool) "n=2 exact" true (s2 < 1e-8)

let prop_nary_dominates_operands =
  let gen =
    QCheck.Gen.(
      let* n = int_range 2 6 in
      let* mus = list_repeat n (float_range (-2.) 2.) in
      let* sigmas = list_repeat n (float_range 0.05 1.) in
      return (List.map2 (fun mu sigma -> (mu, sigma)) mus sigmas))
  in
  QCheck.Test.make ~name:"exact n-ary max dominates operand means" ~count:50
    (QCheck.make gen) (fun params ->
      let ops = List.map (fun (mu, sigma) -> Normal.make ~mu ~sigma) params in
      let c = Nary.max_list ops in
      List.for_all (fun (mu, _) -> Normal.mu c >= mu -. 1e-6) params)

(* ---- correlated max ----------------------------------------------------------- *)

let test_corr_rho_zero_matches_clark () =
  let a = Normal.make ~mu:1. ~sigma:0.3 and b = Normal.make ~mu:1.2 ~sigma:0.5 in
  let c0 = Correlation.max2 a b ~rho:0. in
  let c = Clark.max2 a b in
  check_float ~eps:1e-14 "mu" (Normal.mu c) (Normal.mu c0);
  check_float ~eps:1e-14 "var" (Normal.var c) (Normal.var c0)

let test_corr_perfect_correlation () =
  (* rho = 1 with equal sigmas: max(A, B) = A or B surely (whichever mean
     is larger), so the result is the dominant operand. *)
  let a = Normal.make ~mu:2. ~sigma:0.4 and b = Normal.make ~mu:1. ~sigma:0.4 in
  let c = Correlation.max2 a b ~rho:1. in
  check_float ~eps:1e-12 "mu" 2. (Normal.mu c);
  check_float ~eps:1e-12 "sigma" 0.4 (Normal.sigma c)

let test_corr_vs_monte_carlo_sweep () =
  let a = Normal.make ~mu:1. ~sigma:0.3 and b = Normal.make ~mu:1.2 ~sigma:0.5 in
  let rng = Util.Rng.create 8 in
  List.iter
    (fun rho ->
      let c = Correlation.max2 a b ~rho in
      let samples = Correlation.mc_max2 rng a b ~rho ~n:400_000 in
      let st = Util.Stats.of_array samples in
      if abs_float (Normal.mu c -. Util.Stats.mean st) > 0.01 then
        Alcotest.failf "rho=%g: mu %.4f vs %.4f" rho (Normal.mu c) (Util.Stats.mean st);
      if abs_float (Normal.sigma c -. Util.Stats.std_dev st) > 0.01 then
        Alcotest.failf "rho=%g: sigma %.4f vs %.4f" rho (Normal.sigma c)
          (Util.Stats.std_dev st))
    [ -0.9; -0.3; 0.; 0.5; 0.9 ]

let test_corr_sigma_decreases_with_rho () =
  (* For similar operands, positive correlation reduces the averaging
     benefit of the max: sigma of the max grows with rho. *)
  let a = Normal.make ~mu:1. ~sigma:0.4 and b = Normal.make ~mu:1. ~sigma:0.4 in
  let sig_at rho = Normal.sigma (Correlation.max2 a b ~rho) in
  Alcotest.(check bool) "monotone in rho" true
    (sig_at (-0.5) < sig_at 0. && sig_at 0. < sig_at 0.8)

let test_cross_correlation_bounds_and_limits () =
  let a = Normal.make ~mu:1. ~sigma:0.3 and b = Normal.make ~mu:5. ~sigma:0.3 in
  (* B dominates: r(max, X) ~ r(B, X). *)
  let r = Correlation.cross_correlation a b ~rho:0. ~r_a:0.9 ~r_b:0.2 in
  Alcotest.(check bool) "follows dominant" true (abs_float (r -. 0.2) < 0.01);
  (* clipping *)
  let r2 =
    Correlation.cross_correlation a a ~rho:1. ~r_a:1.5 ~r_b:1.5 (* bogus inputs *)
  in
  Alcotest.(check bool) "clipped" true (r2 <= 1. && r2 >= -1.)

(* ---- correlation-aware SSTA ----------------------------------------------------- *)

let test_cssta_matches_ssta_on_tree () =
  (* No reconvergence: correlations are all zero, the two analyses agree. *)
  let net = Circuit.Generate.tree () in
  let sizes = Circuit.Netlist.min_sizes net in
  let ind, corr = Sta.Cssta.compare_to_independent ~model net ~sizes in
  check_float ~eps:1e-9 "mu" (Normal.mu ind) (Normal.mu corr);
  check_float ~eps:1e-9 "var" (Normal.var ind) (Normal.var corr)

let test_cssta_matches_ssta_on_chain () =
  let net = Circuit.Generate.chain ~length:12 () in
  let sizes = Circuit.Netlist.min_sizes net in
  let ind, corr = Sta.Cssta.compare_to_independent ~model net ~sizes in
  check_float ~eps:1e-9 "mu" (Normal.mu ind) (Normal.mu corr)

let test_cssta_detects_reconvergence () =
  (* Diamond: one gate fans out to two branches that reconverge.  The two
     branch arrivals share the root's delay, so their correlation must be
     substantially positive and CSSTA's sigma must exceed SSTA's. *)
  let inv = Circuit.Cell.make ~name:"inv" ~n_inputs:1 ~c_in:0.2 () in
  let nand2 = Circuit.Cell.nand 2 in
  let b = Circuit.Netlist.Builder.create () in
  let a = Circuit.Netlist.Builder.add_pi b "a" in
  let root = Circuit.Netlist.Builder.add_gate b ~cell:inv [ a ] in
  let l = Circuit.Netlist.Builder.add_gate b ~cell:inv [ root ] in
  let r = Circuit.Netlist.Builder.add_gate b ~cell:inv [ root ] in
  let join = Circuit.Netlist.Builder.add_gate b ~cell:nand2 [ l; r ] in
  Circuit.Netlist.Builder.mark_po b join;
  let net = Circuit.Netlist.Builder.build b in
  let sizes = Circuit.Netlist.min_sizes net in
  let res = Sta.Cssta.analyze ~model net ~sizes in
  (* gates: root=0, l=1, r=2, join=3 *)
  Alcotest.(check bool) "branches correlated" true (res.Sta.Cssta.correlation.(1).(2) > 0.3);
  let ind, corr = Sta.Cssta.compare_to_independent ~model net ~sizes in
  Alcotest.(check bool) "correlated sigma larger" true
    (Normal.sigma corr > Normal.sigma ind);
  Alcotest.(check bool) "correlated mu not larger" true
    (Normal.mu corr <= Normal.mu ind +. 1e-9);
  (* and Monte Carlo agrees with the correlated analysis *)
  let samples =
    Sta.Yield.sample_circuit_delays ~rng:(Util.Rng.create 4) ~model net ~sizes ~n:100_000
  in
  let st = Util.Stats.of_array samples in
  Alcotest.(check bool) "cssta sigma close to MC" true
    (abs_float (Normal.sigma corr -. Util.Stats.std_dev st) < 0.02);
  Alcotest.(check bool) "cssta mu close to MC" true
    (abs_float (Normal.mu corr -. Util.Stats.mean st) < 0.02)

let test_cssta_closer_to_mc_than_ssta () =
  let net = Circuit.Generate.apex2_like () in
  let sizes = Circuit.Netlist.min_sizes net in
  let ind, corr = Sta.Cssta.compare_to_independent ~model net ~sizes in
  let samples =
    Sta.Yield.sample_circuit_delays ~rng:(Util.Rng.create 6) ~model net ~sizes ~n:20_000
  in
  let st = Util.Stats.of_array samples in
  let err_ind = abs_float (Normal.sigma ind -. Util.Stats.std_dev st) in
  let err_corr = abs_float (Normal.sigma corr -. Util.Stats.std_dev st) in
  Alcotest.(check bool) "sigma error shrinks" true (err_corr < err_ind);
  let mu_err_ind = abs_float (Normal.mu ind -. Util.Stats.mean st) in
  let mu_err_corr = abs_float (Normal.mu corr -. Util.Stats.mean st) in
  Alcotest.(check bool) "mu error shrinks" true (mu_err_corr < mu_err_ind)

let test_cssta_correlation_matrix_sane () =
  let net = Circuit.Generate.apex2_like () in
  let sizes = Circuit.Netlist.min_sizes net in
  let res = Sta.Cssta.analyze ~model net ~sizes in
  let n = Circuit.Netlist.n_gates net in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let r = res.Sta.Cssta.correlation.(i).(j) in
      if r < -1. || r > 1. then Alcotest.failf "corr (%d,%d) = %f out of range" i j r;
      if abs_float (r -. res.Sta.Cssta.correlation.(j).(i)) > 1e-12 then
        Alcotest.failf "matrix not symmetric at (%d,%d)" i j
    done;
    if res.Sta.Cssta.correlation.(i).(i) <> 1. then
      Alcotest.failf "diagonal (%d) = %f" i res.Sta.Cssta.correlation.(i).(i)
  done

(* ---- activity and power ----------------------------------------------------------- *)

let test_activity_inverter_chain () =
  (* p alternates 0.5 -> stays 0.5 for inverters with p_in = 0.5. *)
  let net = Circuit.Generate.chain ~length:4 () in
  let p = Circuit.Activity.signal_probabilities net in
  Array.iter (fun pi -> check_float ~eps:1e-12 "p = 0.5" 0.5 pi) p;
  let a = Circuit.Activity.switching_activity net in
  Array.iter (fun ai -> check_float ~eps:1e-12 "activity = 0.5" 0.5 ai) a

let test_activity_nand_probability () =
  (* nand2 with p = 0.5 inputs: P(out) = 1 - 0.25 = 0.75. *)
  let nand2 = Circuit.Cell.nand 2 in
  let b = Circuit.Netlist.Builder.create () in
  let x = Circuit.Netlist.Builder.add_pi b "x" in
  let y = Circuit.Netlist.Builder.add_pi b "y" in
  let g = Circuit.Netlist.Builder.add_gate b ~cell:nand2 [ x; y ] in
  Circuit.Netlist.Builder.mark_po b g;
  let net = Circuit.Netlist.Builder.build b in
  let p = Circuit.Activity.signal_probabilities net in
  check_float ~eps:1e-12 "nand prob" 0.75 p.(0);
  (* biased inputs *)
  let p2 =
    Circuit.Activity.signal_probabilities ~pi_probability:(fun _ -> 0.9) net
  in
  check_float ~eps:1e-12 "nand biased" (1. -. 0.81) p2.(0)

let test_activity_cell_functions () =
  let check_cell name n_inputs pis expected =
    let cell = Circuit.Cell.make ~name ~n_inputs () in
    let b = Circuit.Netlist.Builder.create () in
    let inputs = List.init n_inputs (fun i -> Circuit.Netlist.Builder.add_pi b (Printf.sprintf "x%d" i)) in
    let g = Circuit.Netlist.Builder.add_gate b ~cell inputs in
    Circuit.Netlist.Builder.mark_po b g;
    let net = Circuit.Netlist.Builder.build b in
    let p =
      Circuit.Activity.signal_probabilities
        ~pi_probability:(fun i -> List.nth pis i)
        net
    in
    check_float ~eps:1e-12 name expected p.(0)
  in
  check_cell "inv" 1 [ 0.3 ] 0.7;
  check_cell "buf" 1 [ 0.3 ] 0.3;
  check_cell "and2" 2 [ 0.5; 0.4 ] 0.2;
  check_cell "or2" 2 [ 0.5; 0.4 ] 0.7;
  check_cell "nor2" 2 [ 0.5; 0.4 ] 0.3;
  check_cell "xor2" 2 [ 0.5; 0.4 ] 0.5;
  check_cell "aoi21" 3 [ 0.5; 0.4; 0.3 ] (1. -. (0.2 +. 0.3 -. 0.06));
  check_cell "oai21" 3 [ 0.5; 0.4; 0.3 ] (1. -. (0.7 *. 0.3));
  check_cell "mystery" 2 [ 0.9; 0.9 ] 0.5

let test_power_weights_consistent_with_dynamic_power () =
  (* dynamic_power(S) - dynamic_power(1) = sum w_c (S_c - 1). *)
  let net = Circuit.Generate.apex2_like () in
  let weights = Circuit.Activity.power_weights net in
  let ones = Circuit.Netlist.min_sizes net in
  let rng = Util.Rng.create 9 in
  let sizes = Array.map (fun _ -> Util.Rng.uniform rng ~lo:1. ~hi:3.) ones in
  let lhs =
    Circuit.Activity.dynamic_power net ~sizes -. Circuit.Activity.dynamic_power net ~sizes:ones
  in
  let rhs = ref 0. in
  Array.iteri (fun i w -> rhs := !rhs +. (w *. (sizes.(i) -. 1.))) weights;
  check_float ~eps:1e-9 "affine in sizes" !rhs lhs

let test_min_weighted_objective () =
  let net = Circuit.Generate.apex2_like () in
  let weights = Circuit.Activity.power_weights net in
  let unsized = Sizing.Engine.solve ~model net Sizing.Objective.Min_area in
  let bound = 0.85 *. unsized.Sizing.Engine.mu in
  let area_opt =
    Sizing.Engine.solve ~model net (Sizing.Objective.Min_area_bounded { k = 0.; bound })
  in
  let power_opt =
    Sizing.Engine.solve ~model net
      (Sizing.Objective.Min_weighted { label = "power"; weights; k = 0.; bound })
  in
  Alcotest.(check bool) "converged" true power_opt.Sizing.Engine.converged;
  Alcotest.(check bool) "meets bound" true (power_opt.Sizing.Engine.mu <= bound +. 1e-3);
  let power_of s = Circuit.Activity.dynamic_power net ~sizes:s.Sizing.Engine.sizes in
  Alcotest.(check bool) "power objective saves power" true
    (power_of power_opt <= power_of area_opt +. 1e-6)

let test_min_weighted_dimension_checked () =
  let net = Circuit.Generate.tree () in
  Alcotest.check_raises "bad weights"
    (Invalid_argument "Engine: weight vector dimension mismatch") (fun () ->
      ignore
        (Sizing.Engine.solve ~model net
           (Sizing.Objective.Min_weighted
              { label = "power"; weights = [| 1. |]; k = 0.; bound = 10. })))

let test_min_weighted_formulate_agrees () =
  let net = Circuit.Generate.example_fig2 () in
  let weights = Circuit.Activity.power_weights net in
  let unsized = Sizing.Engine.solve ~model net Sizing.Objective.Min_area in
  let bound = 0.8 *. unsized.Sizing.Engine.mu in
  let objective = Sizing.Objective.Min_weighted { label = "power"; weights; k = 0.; bound } in
  let full = Sizing.Formulate.solve (Sizing.Formulate.build ~model net objective) in
  let reduced = Sizing.Engine.solve ~model net objective in
  check_float ~eps:0.02 "same mu" reduced.Sizing.Engine.mu full.Sizing.Engine.mu;
  (* compare on the actual objective: switched capacitance *)
  let power s = Circuit.Activity.dynamic_power net ~sizes:s.Sizing.Engine.sizes in
  check_float ~eps:0.02 "same power" (power reduced) (power full)

(* ---- extension experiment drivers --------------------------------------------------- *)

let test_nary_experiment_shape () =
  let r = Experiments.Nary_exp.run ~max_n:8 () in
  Alcotest.(check bool) "has rows" true (List.length r.Experiments.Nary_exp.rows >= 8);
  List.iter
    (fun row ->
      let open Experiments.Nary_exp in
      if row.n = 2 && row.fold_mu_err > 1e-8 then
        Alcotest.failf "n=2 should be exact, err %.2e" row.fold_mu_err;
      if row.fold_sigma_err > row.exact_sigma then
        Alcotest.fail "fold error exceeds the sigma scale")
    r.Experiments.Nary_exp.rows

let test_correlation_experiment_shape () =
  let r = Experiments.Correlation_exp.run ~model ~samples:4_000 ~big:false () in
  match r.Experiments.Correlation_exp.rows with
  | [ tree; dag ] ->
      let open Experiments.Correlation_exp in
      check_float ~eps:1e-6 "tree: cssta = ssta" (Normal.mu tree.ssta) (Normal.mu tree.cssta);
      Alcotest.(check bool) "dag: cssta sigma larger" true
        (Normal.sigma dag.cssta > Normal.sigma dag.ssta);
      Alcotest.(check bool) "dag: cssta mu smaller" true
        (Normal.mu dag.cssta < Normal.mu dag.ssta)
  | _ -> Alcotest.fail "expected two rows"

let test_robust_experiment_shape () =
  let r = Experiments.Robust_exp.run ~samples:4_000 ~true_ratios:[ 0.15; 0.45 ] () in
  match r.Experiments.Robust_exp.rows with
  | [ low; high ] ->
      let yield k (row : Experiments.Robust_exp.row) = List.assoc k row.Experiments.Robust_exp.yields in
      (* lower true uncertainty only helps; higher hurts *)
      Alcotest.(check bool) "low ratio beats prediction" true (yield 0. low > 0.55);
      Alcotest.(check bool) "high ratio hurts k=0" true (yield 0. high < 0.45);
      (* the guard band keeps the high-uncertainty yield much higher *)
      Alcotest.(check bool) "k=3 degrades gracefully" true
        (yield 3. high > yield 0. high +. 0.2)
  | _ -> Alcotest.fail "expected two rows"

let test_power_experiment_shape () =
  let r = Experiments.Power_exp.run ~model ~fractions:[ 0.85 ] () in
  match r.Experiments.Power_exp.rows with
  | [ row ] ->
      let open Experiments.Power_exp in
      Alcotest.(check bool) "power objective saves power" true
        (row.power_of_power_opt <= row.power_of_area_opt +. 1e-6);
      Alcotest.(check bool) "area objective saves area" true
        (row.area_of_area_opt <= row.area_of_power_opt +. 1e-6)
  | _ -> Alcotest.fail "expected one row"

let () =
  let q = Seed_info.to_alcotest in
  Alcotest.run "extensions"
    [
      ( "gauss_hermite",
        [
          Alcotest.test_case "polynomial exactness" `Quick test_gh_polynomial_exactness;
          Alcotest.test_case "bounds" `Quick test_gh_bounds;
          Alcotest.test_case "sorted symmetric" `Quick test_gh_nodes_sorted_symmetric;
          Alcotest.test_case "expectation moments" `Quick test_expectation_moments;
        ] );
      ( "nary",
        [
          Alcotest.test_case "n=2 matches Clark" `Quick test_nary_matches_clark_for_two;
          Alcotest.test_case "vs Monte Carlo" `Slow test_nary_vs_monte_carlo;
          Alcotest.test_case "point masses only" `Quick test_nary_point_masses_only;
          Alcotest.test_case "mixed point mass" `Quick test_nary_mixed_point_mass;
          Alcotest.test_case "fold error grows" `Quick test_nary_fold_error_grows;
          q prop_nary_dominates_operands;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "rho=0 matches Clark" `Quick test_corr_rho_zero_matches_clark;
          Alcotest.test_case "perfect correlation" `Quick test_corr_perfect_correlation;
          Alcotest.test_case "vs Monte Carlo" `Slow test_corr_vs_monte_carlo_sweep;
          Alcotest.test_case "sigma grows with rho" `Quick test_corr_sigma_decreases_with_rho;
          Alcotest.test_case "cross correlation" `Quick test_cross_correlation_bounds_and_limits;
        ] );
      ( "cssta",
        [
          Alcotest.test_case "tree: matches ssta" `Quick test_cssta_matches_ssta_on_tree;
          Alcotest.test_case "chain: matches ssta" `Quick test_cssta_matches_ssta_on_chain;
          Alcotest.test_case "diamond reconvergence" `Slow test_cssta_detects_reconvergence;
          Alcotest.test_case "closer to MC than ssta" `Slow test_cssta_closer_to_mc_than_ssta;
          Alcotest.test_case "matrix sanity" `Quick test_cssta_correlation_matrix_sane;
        ] );
      ( "activity",
        [
          Alcotest.test_case "inverter chain" `Quick test_activity_inverter_chain;
          Alcotest.test_case "nand probability" `Quick test_activity_nand_probability;
          Alcotest.test_case "cell functions" `Quick test_activity_cell_functions;
          Alcotest.test_case "weights = affine power" `Quick
            test_power_weights_consistent_with_dynamic_power;
        ] );
      ( "min_weighted",
        [
          Alcotest.test_case "saves power" `Quick test_min_weighted_objective;
          Alcotest.test_case "dimension checked" `Quick test_min_weighted_dimension_checked;
          Alcotest.test_case "formulate agrees" `Quick test_min_weighted_formulate_agrees;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "nary shape" `Quick test_nary_experiment_shape;
          Alcotest.test_case "correlation shape" `Slow test_correlation_experiment_shape;
          Alcotest.test_case "power shape" `Slow test_power_experiment_shape;
          Alcotest.test_case "robustness shape" `Slow test_robust_experiment_shape;
        ] );
    ]
