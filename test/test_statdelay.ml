(* Tests for the statistical delay operators: Normal arithmetic, the Clark
   analytical max (values and derivatives), and the Monte Carlo reference. *)

open Statdelay

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

(* ---- Normal -------------------------------------------------------------- *)

let test_normal_make () =
  let x = Normal.make ~mu:2. ~sigma:0.5 in
  check_float "mu" 2. (Normal.mu x);
  check_float "var" 0.25 (Normal.var x);
  check_float "sigma" 0.5 (Normal.sigma x);
  Alcotest.check_raises "negative sigma" (Invalid_argument "Normal.make: negative sigma")
    (fun () -> ignore (Normal.make ~mu:0. ~sigma:(-1.)))

let test_normal_of_var () =
  let x = Normal.of_var ~mu:1. ~var:4. in
  check_float "sigma" 2. (Normal.sigma x);
  (* tiny negative variance from rounding is clipped *)
  let y = Normal.of_var ~mu:1. ~var:(-1e-15) in
  check_float "clipped" 0. (Normal.var y);
  Alcotest.check_raises "negative var" (Invalid_argument "Normal.of_var: negative variance")
    (fun () -> ignore (Normal.of_var ~mu:0. ~var:(-1.)))

let test_normal_add () =
  let a = Normal.make ~mu:1. ~sigma:3. and b = Normal.make ~mu:2. ~sigma:4. in
  let c = Normal.add a b in
  check_float "mu adds" 3. (Normal.mu c);
  check_float "var adds" 25. (Normal.var c);
  check_float "sigma pythagorean" 5. (Normal.sigma c)

let test_normal_shift_scale () =
  let x = Normal.make ~mu:2. ~sigma:1. in
  let s = Normal.shift x 3. in
  check_float "shift mu" 5. (Normal.mu s);
  check_float "shift var" 1. (Normal.var s);
  let sc = Normal.scale x 2. in
  check_float "scale mu" 4. (Normal.mu sc);
  check_float "scale var" 4. (Normal.var sc)

let test_normal_cdf_quantile () =
  let x = Normal.make ~mu:10. ~sigma:2. in
  check_float ~eps:1e-12 "cdf at mean" 0.5 (Normal.cdf_at x 10.);
  check_float ~eps:1e-10 "cdf at +1s" 0.841344746068543 (Normal.cdf_at x 12.);
  check_float ~eps:1e-9 "quantile roundtrip" 12. (Normal.quantile x 0.841344746068543);
  check_float "mu_plus_k_sigma" 16. (Normal.mu_plus_k_sigma x 3.)

let test_normal_deterministic_cdf () =
  let x = Normal.deterministic 5. in
  check_float "below" 0. (Normal.cdf_at x 4.9);
  check_float "at" 1. (Normal.cdf_at x 5.);
  check_float "quantile" 5. (Normal.quantile x 0.3)

(* ---- Clark max: values --------------------------------------------------- *)

(* Closed-form check for equal means and sigmas: for A, B ~ N(m, s^2) iid,
   mu_max = m + s/sqrt(pi), var_max = s^2 (1 - 1/pi). *)
let test_clark_equal_operands () =
  let m = 3. and s = 0.8 in
  let a = Normal.make ~mu:m ~sigma:s in
  let c = Clark.max2 a a in
  check_float ~eps:1e-12 "mu" (m +. (s /. sqrt Float.pi)) (Normal.mu c);
  check_float ~eps:1e-12 "var" (s *. s *. (1. -. (1. /. Float.pi))) (Normal.var c)

let test_clark_dominant_operand () =
  (* When A is far above B, max(A, B) ~ A. *)
  let a = Normal.make ~mu:100. ~sigma:1. and b = Normal.make ~mu:0. ~sigma:1. in
  let c = Clark.max2 a b in
  check_float ~eps:1e-9 "mu ~ muA" 100. (Normal.mu c);
  check_float ~eps:1e-9 "var ~ varA" 1. (Normal.var c)

let test_clark_commutative () =
  let a = Normal.make ~mu:1. ~sigma:0.3 and b = Normal.make ~mu:1.4 ~sigma:0.6 in
  let c1 = Clark.max2 a b and c2 = Clark.max2 b a in
  check_float ~eps:1e-14 "mu" (Normal.mu c1) (Normal.mu c2);
  check_float ~eps:1e-14 "var" (Normal.var c1) (Normal.var c2)

let test_clark_degenerate_both () =
  let a = Normal.deterministic 2. and b = Normal.deterministic 5. in
  let c = Clark.max2 a b in
  check_float "mu" 5. (Normal.mu c);
  check_float "var" 0. (Normal.var c)

let test_clark_degenerate_tie () =
  let a = Normal.deterministic 2. and b = Normal.deterministic 2. in
  let c = Clark.max2 a b in
  check_float "mu" 2. (Normal.mu c);
  check_float "var" 0. (Normal.var c)

let test_clark_mu_exceeds_operands () =
  (* mu_max >= max(mu_A, mu_B) always. *)
  let cases =
    [ (0., 1., 0., 1.); (1., 0.5, 1.2, 0.1); (-3., 2., 4., 0.01); (0., 0.1, 0., 3.) ]
  in
  List.iter
    (fun (ma, sa, mb, sb) ->
      let c = Clark.max2 (Normal.make ~mu:ma ~sigma:sa) (Normal.make ~mu:mb ~sigma:sb) in
      if Normal.mu c < max ma mb -. 1e-12 then
        Alcotest.failf "mu_max %.6f below operands (%g, %g)" (Normal.mu c) ma mb)
    cases

(* Property sweep over Util.Rng-driven random operands — the same
   deterministic generator the Monte Carlo oracle uses, so the sweep is
   reproducible bit for bit across runs and machines. *)
let test_clark_random_properties () =
  let rng = Util.Rng.create 4242 in
  for _ = 1 to 1000 do
    let mu_a = Util.Rng.uniform rng ~lo:(-4.) ~hi:4. in
    let mu_b = Util.Rng.uniform rng ~lo:(-4.) ~hi:4. in
    let sigma_a = Util.Rng.uniform rng ~lo:0. ~hi:2. in
    let sigma_b = Util.Rng.uniform rng ~lo:0. ~hi:2. in
    let a = Normal.make ~mu:mu_a ~sigma:sigma_a in
    let b = Normal.make ~mu:mu_b ~sigma:sigma_b in
    let c = Clark.max2 a b and c' = Clark.max2 b a in
    (* operand symmetry: eq. 10/12 are symmetric in (A, B) *)
    if abs_float (Normal.mu c -. Normal.mu c') > 1e-11 then
      Alcotest.failf "max2 not symmetric in mu at (%g,%g)/(%g,%g): %g vs %g" mu_a
        sigma_a mu_b sigma_b (Normal.mu c) (Normal.mu c');
    if abs_float (Normal.var c -. Normal.var c') > 1e-11 then
      Alcotest.failf "max2 not symmetric in var at (%g,%g)/(%g,%g)" mu_a sigma_a
        mu_b sigma_b;
    (* the mean of the max dominates both operand means *)
    if Normal.mu c < Float.max mu_a mu_b -. 1e-11 then
      Alcotest.failf "mu_C %.9f below max(%.9f, %.9f)" (Normal.mu c) mu_a mu_b
  done

let test_clark_random_degenerate () =
  (* sigma = 0 on both operands must reduce to the deterministic max
     exactly — no epsilon: this is what guarantees the SSTA engine
     collapses onto the deterministic one in the sigma -> 0 limit. *)
  let rng = Util.Rng.create 77 in
  for _ = 1 to 300 do
    let mu_a = Util.Rng.uniform rng ~lo:(-10.) ~hi:10. in
    let mu_b = Util.Rng.uniform rng ~lo:(-10.) ~hi:10. in
    let c = Clark.max2 (Normal.deterministic mu_a) (Normal.deterministic mu_b) in
    if Normal.mu c <> Float.max mu_a mu_b then
      Alcotest.failf "degenerate max2 %.17g <> max(%.17g, %.17g)" (Normal.mu c)
        mu_a mu_b;
    if Normal.var c <> 0. then Alcotest.failf "degenerate var %.3g <> 0" (Normal.var c)
  done

let test_clark_random_continuity () =
  (* Continuity across the degenerate cutoff: just-above-zero sigmas must
     give (nearly) the deterministic answer, not jump. *)
  let rng = Util.Rng.create 78 in
  for _ = 1 to 300 do
    let mu_a = Util.Rng.uniform rng ~lo:(-5.) ~hi:5. in
    let mu_b = Util.Rng.uniform rng ~lo:(-5.) ~hi:5. in
    let s = Util.Rng.uniform rng ~lo:1e-9 ~hi:1e-7 in
    let c = Clark.max2 (Normal.make ~mu:mu_a ~sigma:s) (Normal.make ~mu:mu_b ~sigma:s) in
    let exact = Float.max mu_a mu_b in
    (* theta = s sqrt 2, and mu_C - max(mu) <= theta phi(alpha) <= 0.4 theta *)
    if abs_float (Normal.mu c -. exact) > 1e-6 then
      Alcotest.failf "continuity: sigma %.3g gives mu %.9f vs exact %.9f" s
        (Normal.mu c) exact;
    if Normal.sigma c > 1e-6 then
      Alcotest.failf "continuity: sigma_C %.3g not near zero" (Normal.sigma c)
  done

let all_partials_finite (p : Clark.partials) =
  List.for_all
    (fun v -> v -. v = 0.)
    [
      p.Clark.dmu_dmu_a; p.Clark.dmu_dmu_b; p.Clark.dmu_dvar_a; p.Clark.dmu_dvar_b;
      p.Clark.dvar_dmu_a; p.Clark.dvar_dmu_b; p.Clark.dvar_dvar_a; p.Clark.dvar_dvar_b;
    ]

let test_clark_degenerate_partials_pinned () =
  (* Regression for the theta -> 0 guard: at sigma_a = sigma_b = 0 the
     partials must be the exact indicator of the dominant operand — in
     particular finite, never the 0/0 of the raw formulas. *)
  let a = Normal.deterministic 4. and b = Normal.deterministic 2. in
  let c, p = Clark.max2_full a b in
  check_float "mu" 4. (Normal.mu c);
  check_float "var" 0. (Normal.var c);
  Alcotest.(check bool) "partials finite" true (all_partials_finite p);
  check_float "dmu/dmu_a" 1. p.Clark.dmu_dmu_a;
  check_float "dmu/dmu_b" 0. p.Clark.dmu_dmu_b;
  check_float "dvar/dvar_a" 1. p.Clark.dvar_dvar_a;
  check_float "dvar/dvar_b" 0. p.Clark.dvar_dvar_b;
  (* Exact tie: the symmetric Phi(0) = 1/2 limit, still finite. *)
  let t = Normal.deterministic 3. in
  let ct, pt = Clark.max2_full t t in
  check_float "tie mu" 3. (Normal.mu ct);
  Alcotest.(check bool) "tie partials finite" true (all_partials_finite pt);
  check_float "tie dmu/dmu_a" 0.5 pt.Clark.dmu_dmu_a;
  check_float "tie dmu/dmu_b" 0.5 pt.Clark.dmu_dmu_b

let test_clark_just_above_threshold_finite () =
  (* Spreads straddling degenerate_theta: both branches must stay finite
     and agree to the continuity tolerance of the cutoff. *)
  let th = Clark.degenerate_theta in
  List.iter
    (fun s ->
      let a = Normal.make ~mu:1. ~sigma:s
      and b = Normal.make ~mu:(1. +. (1e-3 *. s)) ~sigma:s in
      let c, p = Clark.max2_full a b in
      if not (Normal.mu c -. Normal.mu c = 0.) then
        Alcotest.failf "mu not finite at sigma = %.3g" s;
      if not (all_partials_finite p) then
        Alcotest.failf "partials not finite at sigma = %.3g" s)
    [ 0.1 *. th; 0.49 *. th; 0.71 *. th; 1.01 *. th; 2. *. th; 10. *. th ]

let test_correlation_rho_near_one () =
  (* rho = 1 - 1e-12 with equal spreads drives the correlated theta to
     ~sigma*sqrt(2e-12): far below the degenerate threshold, so the max
     must collapse to the dominant operand exactly — the raw alpha would
     be ~1e6 and the formulas would still work, but at rho exactly 1 (or
     slightly above, from upstream rounding) theta is 0 and alpha is
     0/0; the guard keeps the whole family finite. *)
  let a = Normal.make ~mu:5. ~sigma:0.3 and b = Normal.make ~mu:4. ~sigma:0.3 in
  List.iter
    (fun rho ->
      let c = Correlation.max2 a b ~rho in
      check_float "mu = dominant mu" (Normal.mu a) (Normal.mu c);
      check_float "sigma = dominant sigma" (Normal.sigma a) (Normal.sigma c))
    [ 1. -. 1e-12; 1.; 1. +. 1e-9 (* clipped back to 1 *) ];
  (* theta itself: clamped to 0, never NaN from a tiny negative variance *)
  List.iter
    (fun rho ->
      let th = Correlation.theta a b ~rho in
      Alcotest.(check bool) "theta finite" true (th -. th = 0.);
      Alcotest.(check bool) "theta >= 0" true (th >= 0.))
    [ 1. -. 1e-12; 1.; 1. +. 1e-9 ]

let test_clark_expectation_sq_consistent () =
  let a = Normal.make ~mu:1. ~sigma:0.4 and b = Normal.make ~mu:1.5 ~sigma:0.2 in
  let c = Clark.max2 a b in
  let e2 = Clark.expectation_sq a b in
  check_float ~eps:1e-12 "var = E2 - mu^2" (Normal.var c)
    (e2 -. (Normal.mu c *. Normal.mu c))

let test_clark_max_list () =
  let xs =
    [
      Normal.make ~mu:1. ~sigma:0.1;
      Normal.make ~mu:2. ~sigma:0.2;
      Normal.make ~mu:1.5 ~sigma:0.4;
    ]
  in
  let c = Clark.max_list xs in
  Alcotest.(check bool) "above all means" true (Normal.mu c >= 2.);
  (* singleton *)
  let single = Clark.max_list [ List.hd xs ] in
  check_float "singleton mu" 1. (Normal.mu single);
  Alcotest.check_raises "empty" (Invalid_argument "Clark.max_list: empty list")
    (fun () -> ignore (Clark.max_list []))

let test_clark_max_array_matches_list () =
  let xs =
    [|
      Normal.make ~mu:0.5 ~sigma:0.2;
      Normal.make ~mu:0.7 ~sigma:0.1;
      Normal.make ~mu:0.4 ~sigma:0.5;
      Normal.make ~mu:0.9 ~sigma:0.05;
    |]
  in
  let a = Clark.max_array xs and l = Clark.max_list (Array.to_list xs) in
  check_float ~eps:1e-15 "mu" (Normal.mu l) (Normal.mu a);
  check_float ~eps:1e-15 "var" (Normal.var l) (Normal.var a)

let test_clark_min2 () =
  (* min(A, B) = -max(-A, -B): check against sampling and duality. *)
  let a = Normal.make ~mu:1. ~sigma:0.3 and b = Normal.make ~mu:1.2 ~sigma:0.5 in
  let m = Clark.min2 a b in
  Alcotest.(check bool) "below both means" true (Normal.mu m <= 1.);
  let rng = Util.Rng.create 55 in
  let st =
    Util.Stats.of_array
      (Array.init 200_000 (fun _ ->
           min
             (Util.Rng.gaussian rng ~mu:1. ~sigma:0.3)
             (Util.Rng.gaussian rng ~mu:1.2 ~sigma:0.5)))
  in
  Alcotest.(check bool) "mu matches MC" true
    (abs_float (Normal.mu m -. Util.Stats.mean st) < 0.01);
  Alcotest.(check bool) "sigma matches MC" true
    (abs_float (Normal.sigma m -. Util.Stats.std_dev st) < 0.01);
  (* duality: min(A,B) + max(A,B) has mean mu_A + mu_B *)
  let mx = Clark.max2 a b in
  check_float ~eps:1e-12 "mean duality" (1. +. 1.2) (Normal.mu m +. Normal.mu mx);
  (* min_list folds *)
  let ml = Clark.min_list [ a; b; Normal.make ~mu:0.5 ~sigma:0.1 ] in
  Alcotest.(check bool) "n-ary min below" true (Normal.mu ml < Normal.mu m);
  Alcotest.check_raises "empty" (Invalid_argument "Clark.min_list: empty list")
    (fun () -> ignore (Clark.min_list []))

let test_clark_vs_monte_carlo () =
  let rng = Util.Rng.create 101 in
  let cases =
    [ (0., 1., 0., 1.); (1., 0.5, 1.3, 0.25); (2., 0.1, 0., 1.); (0., 0.3, 0.1, 0.3) ]
  in
  List.iter
    (fun (ma, sa, mb, sb) ->
      let a = Normal.make ~mu:ma ~sigma:sa and b = Normal.make ~mu:mb ~sigma:sb in
      let cmp = Mc.compare_max2 rng a b ~n:400_000 in
      if cmp.Mc.mu_abs_err > 0.01 then
        Alcotest.failf "mu error %.4f too large" cmp.Mc.mu_abs_err;
      if cmp.Mc.sigma_abs_err > 0.01 then
        Alcotest.failf "sigma error %.4f too large" cmp.Mc.sigma_abs_err)
    cases

(* ---- Clark max: derivatives ------------------------------------------------ *)

(* Pack the four Clark inputs as a vector and check all eight partials
   against central finite differences of the value functions. *)
let clark_fd_check ~mu_a ~var_a ~mu_b ~var_b =
  let make x =
    ( Normal.of_var ~mu:x.(0) ~var:x.(1),
      Normal.of_var ~mu:x.(2) ~var:x.(3) )
  in
  let x0 = [| mu_a; var_a; mu_b; var_b |] in
  let _, p = Clark.max2_full (Normal.of_var ~mu:mu_a ~var:var_a)
      (Normal.of_var ~mu:mu_b ~var:var_b) in
  let fd_mu =
    Util.Numerics.fd_gradient ~h:1e-7
      (fun x ->
        let a, b = make x in
        Normal.mu (Clark.max2 a b))
      x0
  in
  let fd_var =
    Util.Numerics.fd_gradient ~h:1e-7
      (fun x ->
        let a, b = make x in
        Normal.var (Clark.max2 a b))
      x0
  in
  let pairs =
    [
      ("dmu/dmu_a", p.Clark.dmu_dmu_a, fd_mu.(0));
      ("dmu/dvar_a", p.Clark.dmu_dvar_a, fd_mu.(1));
      ("dmu/dmu_b", p.Clark.dmu_dmu_b, fd_mu.(2));
      ("dmu/dvar_b", p.Clark.dmu_dvar_b, fd_mu.(3));
      ("dvar/dmu_a", p.Clark.dvar_dmu_a, fd_var.(0));
      ("dvar/dvar_a", p.Clark.dvar_dvar_a, fd_var.(1));
      ("dvar/dmu_b", p.Clark.dvar_dmu_b, fd_var.(2));
      ("dvar/dvar_b", p.Clark.dvar_dvar_b, fd_var.(3));
    ]
  in
  List.iter
    (fun (name, analytic, numeric) ->
      if not (Util.Numerics.approx_eq ~rtol:1e-4 ~atol:1e-6 analytic numeric) then
        Alcotest.failf "%s: analytic %.8f vs fd %.8f (at mu_a=%g var_a=%g mu_b=%g var_b=%g)"
          name analytic numeric mu_a var_a mu_b var_b)
    pairs

let test_clark_partials_fd_grid () =
  List.iter
    (fun (mu_a, var_a, mu_b, var_b) -> clark_fd_check ~mu_a ~var_a ~mu_b ~var_b)
    [
      (0., 1., 0., 1.);
      (1., 0.09, 1.2, 0.25);
      (2., 0.5, 0., 0.1);
      (-1., 0.2, 1., 0.2);
      (5., 1., 4.5, 2.);
      (0.3, 0.01, 0.31, 0.02);
    ]

let prop_clark_partials_fd =
  let gen =
    QCheck.Gen.(
      let* mu_a = float_range (-3.) 3. in
      let* var_a = float_range 0.05 2. in
      let* mu_b = float_range (-3.) 3. in
      let* var_b = float_range 0.05 2. in
      return (mu_a, var_a, mu_b, var_b))
  in
  QCheck.Test.make ~name:"Clark partials match finite differences" ~count:100
    (QCheck.make gen) (fun (mu_a, var_a, mu_b, var_b) ->
      clark_fd_check ~mu_a ~var_a ~mu_b ~var_b;
      true)

let prop_clark_mu_partials_sum_to_one =
  (* d mu_C / d mu_A + d mu_C / d mu_B = Phi(a) + Phi(-a) = 1: shifting both
     operands by delta shifts the max by delta. *)
  let gen =
    QCheck.Gen.(
      let* mu_a = float_range (-5.) 5. in
      let* var_a = float_range 0.01 4. in
      let* mu_b = float_range (-5.) 5. in
      let* var_b = float_range 0.01 4. in
      return (mu_a, var_a, mu_b, var_b))
  in
  QCheck.Test.make ~name:"translation invariance of mu partials" ~count:300
    (QCheck.make gen) (fun (mu_a, var_a, mu_b, var_b) ->
      let _, p =
        Clark.max2_full
          (Normal.of_var ~mu:mu_a ~var:var_a)
          (Normal.of_var ~mu:mu_b ~var:var_b)
      in
      Util.Numerics.approx_eq ~rtol:1e-10 1. (p.Clark.dmu_dmu_a +. p.Clark.dmu_dmu_b))

let prop_clark_var_bounded =
  (* var_max <= var_A + var_B (in fact <= max, but the loose bound is a
     safe invariant) and var_max >= 0. *)
  let gen =
    QCheck.Gen.(
      let* mu_a = float_range (-5.) 5. in
      let* var_a = float_range 0. 4. in
      let* mu_b = float_range (-5.) 5. in
      let* var_b = float_range 0. 4. in
      return (mu_a, var_a, mu_b, var_b))
  in
  QCheck.Test.make ~name:"variance of max is bounded" ~count:500 (QCheck.make gen)
    (fun (mu_a, var_a, mu_b, var_b) ->
      let c =
        Clark.max2 (Normal.of_var ~mu:mu_a ~var:var_a) (Normal.of_var ~mu:mu_b ~var:var_b)
      in
      Normal.var c >= 0. && Normal.var c <= var_a +. var_b +. 1e-9)

let prop_clark_monotone_in_means =
  (* Increasing an operand's mean cannot decrease the mean of the max. *)
  let gen =
    QCheck.Gen.(
      let* mu_a = float_range (-3.) 3. in
      let* var_a = float_range 0.01 2. in
      let* mu_b = float_range (-3.) 3. in
      let* var_b = float_range 0.01 2. in
      let* bump = float_range 0. 2. in
      return (mu_a, var_a, mu_b, var_b, bump))
  in
  QCheck.Test.make ~name:"mu of max monotone in operand means" ~count:300
    (QCheck.make gen) (fun (mu_a, var_a, mu_b, var_b, bump) ->
      let b = Normal.of_var ~mu:mu_b ~var:var_b in
      let c1 = Clark.max2 (Normal.of_var ~mu:mu_a ~var:var_a) b in
      let c2 = Clark.max2 (Normal.of_var ~mu:(mu_a +. bump) ~var:var_a) b in
      Normal.mu c2 >= Normal.mu c1 -. 1e-12)

let prop_clark_scale_equivariance =
  (* max(aA, aB) = a max(A, B) for a > 0: scaling both operands scales the
     max.  Exercises the full formula including the theta term. *)
  let gen =
    QCheck.Gen.(
      let* mu_a = float_range (-2.) 2. in
      let* var_a = float_range 0.01 2. in
      let* mu_b = float_range (-2.) 2. in
      let* var_b = float_range 0.01 2. in
      let* a = float_range 0.1 5. in
      return (mu_a, var_a, mu_b, var_b, a))
  in
  QCheck.Test.make ~name:"Clark max scale equivariance" ~count:300 (QCheck.make gen)
    (fun (mu_a, var_a, mu_b, var_b, a) ->
      let c1 =
        Clark.max2
          (Normal.of_var ~mu:(a *. mu_a) ~var:(a *. a *. var_a))
          (Normal.of_var ~mu:(a *. mu_b) ~var:(a *. a *. var_b))
      in
      let c2 =
        Normal.scale (Clark.max2 (Normal.of_var ~mu:mu_a ~var:var_a)
                        (Normal.of_var ~mu:mu_b ~var:var_b))
          a
      in
      Util.Numerics.approx_eq ~rtol:1e-9 ~atol:1e-12 (Normal.mu c1) (Normal.mu c2)
      && Util.Numerics.approx_eq ~rtol:1e-8 ~atol:1e-12 (Normal.var c1) (Normal.var c2))

let prop_clark_translation_equivariance =
  (* max(A + c, B + c) = max(A, B) + c. *)
  let gen =
    QCheck.Gen.(
      let* mu_a = float_range (-2.) 2. in
      let* var_a = float_range 0.01 2. in
      let* mu_b = float_range (-2.) 2. in
      let* var_b = float_range 0.01 2. in
      let* c = float_range (-10.) 10. in
      return (mu_a, var_a, mu_b, var_b, c))
  in
  QCheck.Test.make ~name:"Clark max translation equivariance" ~count:300
    (QCheck.make gen) (fun (mu_a, var_a, mu_b, var_b, c) ->
      let shifted =
        Clark.max2
          (Normal.of_var ~mu:(mu_a +. c) ~var:var_a)
          (Normal.of_var ~mu:(mu_b +. c) ~var:var_b)
      in
      let base =
        Clark.max2 (Normal.of_var ~mu:mu_a ~var:var_a) (Normal.of_var ~mu:mu_b ~var:var_b)
      in
      Util.Numerics.approx_eq ~rtol:1e-9 ~atol:1e-9 (Normal.mu shifted)
        (Normal.mu base +. c)
      && Util.Numerics.approx_eq ~rtol:1e-8 ~atol:1e-10 (Normal.var shifted)
           (Normal.var base))

let prop_correlated_max_monotone_in_rho =
  (* For identical operands the mean of the max decreases as the operands
     become more correlated (less independent spread to exploit). *)
  let gen =
    QCheck.Gen.(
      let* mu = float_range (-2.) 2. in
      let* sigma = float_range 0.1 2. in
      let* rho1 = float_range (-0.99) 0.99 in
      let* rho2 = float_range (-0.99) 0.99 in
      return (mu, sigma, min rho1 rho2, max rho1 rho2))
  in
  QCheck.Test.make ~name:"correlated max mean monotone in rho" ~count:300
    (QCheck.make gen) (fun (mu, sigma, rho_lo, rho_hi) ->
      let x = Normal.make ~mu ~sigma in
      Normal.mu (Correlation.max2 x x ~rho:rho_hi)
      <= Normal.mu (Correlation.max2 x x ~rho:rho_lo) +. 1e-12)

(* ---- Monte Carlo reference -------------------------------------------------- *)

let test_mc_sample_max_list () =
  let rng = Util.Rng.create 77 in
  let xs = [ Normal.make ~mu:0. ~sigma:1.; Normal.make ~mu:0.5 ~sigma:0.5 ] in
  let samples = Mc.sample_max_list rng xs ~n:10_000 in
  Alcotest.(check int) "count" 10_000 (Array.length samples);
  let st = Util.Stats.of_array samples in
  Alcotest.(check bool) "mean above both" true (Util.Stats.mean st > 0.5)

let test_mc_standard_errors () =
  let se_mu, se_sigma = Mc.standard_errors ~sigma:2. ~n:400 in
  check_float "se_mu = sigma/sqrt n" 0.1 se_mu;
  check_float "se_sigma = sigma/sqrt 2n" (2. /. sqrt 800.) se_sigma;
  Alcotest.check_raises "n = 1" (Invalid_argument "Mc.standard_errors: need n > 1")
    (fun () -> ignore (Mc.standard_errors ~sigma:1. ~n:1));
  Alcotest.check_raises "sigma < 0"
    (Invalid_argument "Mc.standard_errors: negative sigma") (fun () ->
      ignore (Mc.standard_errors ~sigma:(-1.) ~n:10))

let test_mc_compare_list_close () =
  let rng = Util.Rng.create 78 in
  let xs =
    [
      Normal.make ~mu:1. ~sigma:0.2;
      Normal.make ~mu:1.1 ~sigma:0.2;
      Normal.make ~mu:0.9 ~sigma:0.3;
      Normal.make ~mu:1.05 ~sigma:0.25;
    ]
  in
  let n = 400_000 in
  let cmp = Mc.compare_max_list rng xs ~n in
  (* The observable error decomposes as bias + noise: the repeated
     two-operand fold is an approximation for n-ary maxima (the paper's
     Section 7 lists the explicit n-ary max as future work) with a bias
     of 1-2% of sigma for similar operands, plus sampling noise bounded
     by Mc.standard_errors.  At 400k samples the noise terms are ~3e-4,
     so the budget is dominated by the fold-bias allowance. *)
  let sigma = Normal.sigma cmp.Mc.analytic in
  let se_mu, se_sigma = Mc.standard_errors ~sigma ~n in
  let bias_allowance = 0.02 *. sigma in
  let mu_budget = bias_allowance +. (5. *. se_mu) in
  let sigma_budget = bias_allowance +. (5. *. se_sigma) in
  if cmp.Mc.mu_abs_err > mu_budget then
    Alcotest.failf "mu err %.5f exceeds bias + noise budget %.5f" cmp.Mc.mu_abs_err
      mu_budget;
  if cmp.Mc.sigma_abs_err > sigma_budget then
    Alcotest.failf "sigma err %.5f exceeds bias + noise budget %.5f"
      cmp.Mc.sigma_abs_err sigma_budget;
  (* and the budget is not vacuous: it is well under the bare 2%-of-a-unit
     constant this test used to assert. *)
  Alcotest.(check bool) "budget tighter than the old constant" true
    (mu_budget < 0.02 && sigma_budget < 0.02)

let test_mc_empty_list_rejected () =
  let rng = Util.Rng.create 1 in
  Alcotest.check_raises "empty" (Invalid_argument "Mc.sample_max_list: empty list")
    (fun () -> ignore (Mc.sample_max_list rng [] ~n:10))

let () =
  let q = Seed_info.to_alcotest in
  Alcotest.run "statdelay"
    [
      ( "normal",
        [
          Alcotest.test_case "make" `Quick test_normal_make;
          Alcotest.test_case "of_var" `Quick test_normal_of_var;
          Alcotest.test_case "add" `Quick test_normal_add;
          Alcotest.test_case "shift/scale" `Quick test_normal_shift_scale;
          Alcotest.test_case "cdf/quantile" `Quick test_normal_cdf_quantile;
          Alcotest.test_case "deterministic cdf" `Quick test_normal_deterministic_cdf;
        ] );
      ( "clark_values",
        [
          Alcotest.test_case "equal operands closed form" `Quick test_clark_equal_operands;
          Alcotest.test_case "dominant operand" `Quick test_clark_dominant_operand;
          Alcotest.test_case "commutative" `Quick test_clark_commutative;
          Alcotest.test_case "degenerate" `Quick test_clark_degenerate_both;
          Alcotest.test_case "degenerate tie" `Quick test_clark_degenerate_tie;
          Alcotest.test_case "mu dominates operands" `Quick test_clark_mu_exceeds_operands;
          Alcotest.test_case "random properties (Rng sweep)" `Quick
            test_clark_random_properties;
          Alcotest.test_case "random degenerate exact" `Quick
            test_clark_random_degenerate;
          Alcotest.test_case "continuity near sigma = 0" `Quick
            test_clark_random_continuity;
          Alcotest.test_case "E2 consistency" `Quick test_clark_expectation_sq_consistent;
          Alcotest.test_case "degenerate partials pinned" `Quick
            test_clark_degenerate_partials_pinned;
          Alcotest.test_case "finite across theta cutoff" `Quick
            test_clark_just_above_threshold_finite;
          Alcotest.test_case "rho ~ 1 collapses to dominant" `Quick
            test_correlation_rho_near_one;
          Alcotest.test_case "max_list" `Quick test_clark_max_list;
          Alcotest.test_case "max_array = max_list" `Quick test_clark_max_array_matches_list;
          Alcotest.test_case "min2 / min_list" `Slow test_clark_min2;
          Alcotest.test_case "matches Monte Carlo" `Slow test_clark_vs_monte_carlo;
        ] );
      ( "clark_derivatives",
        [
          Alcotest.test_case "partials vs FD (grid)" `Quick test_clark_partials_fd_grid;
          q prop_clark_partials_fd;
          q prop_clark_mu_partials_sum_to_one;
          q prop_clark_var_bounded;
          q prop_clark_monotone_in_means;
          q prop_clark_scale_equivariance;
          q prop_clark_translation_equivariance;
          q prop_correlated_max_monotone_in_rho;
        ] );
      ( "monte_carlo",
        [
          Alcotest.test_case "sample_max_list" `Quick test_mc_sample_max_list;
          Alcotest.test_case "standard errors" `Quick test_mc_standard_errors;
          Alcotest.test_case "fold vs exact n-ary" `Slow test_mc_compare_list_close;
          Alcotest.test_case "empty rejected" `Quick test_mc_empty_list_rejected;
        ] );
    ]
