#!/usr/bin/env python3
"""Compare a fresh `bench/main.exe json` snapshot against the committed
BENCH_*.json trajectory.

Usage: bench_diff.py COMMITTED.json FRESH.json

Compares only the circuit sizes present in BOTH files (CI measures the
small sizes; the committed snapshot also records the large ones), and
only checks for order-of-magnitude regressions: CI runners are shared,
unpinned machines, so the threshold is deliberately lenient (a 3x
slowdown fails, noise does not).  Structural fields (gate count, depth,
fanin edges, circuit moments) must match exactly — the same generator
seed must describe the same circuit, and a moment drift means the
sweep's arithmetic changed.

Exit status: 0 clean, 1 regression/mismatch, 2 usage or schema error.
"""

import json
import sys

SLOWDOWN_LIMIT = 3.0

# Fields that must be bit-for-bit identical across machines.
EXACT = ["n_pis", "depth", "levels", "fanin_edges", "circuit_mu", "circuit_var"]

# Throughput fields: fresh must be at least committed / SLOWDOWN_LIMIT.
RATES = ["fwd_gates_per_sec", "grads_per_sec"]


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema_version") != 1:
        print(f"bench_diff: {path}: unsupported schema_version "
              f"{doc.get('schema_version')!r}", file=sys.stderr)
        sys.exit(2)
    return {entry["n_gates"]: entry for entry in doc["sizes"]}


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    committed = load(sys.argv[1])
    fresh = load(sys.argv[2])
    common = sorted(set(committed) & set(fresh))
    if not common:
        print("bench_diff: no common circuit sizes to compare", file=sys.stderr)
        sys.exit(2)

    failures = 0
    for n in common:
        c, f = committed[n], fresh[n]
        for field in EXACT:
            if c.get(field) != f.get(field):
                print(f"FAIL n={n}: {field}: committed {c.get(field)!r} "
                      f"!= fresh {f.get(field)!r}")
                failures += 1
        for field in RATES:
            base, now = c.get(field), f.get(field)
            if not base or not now:
                continue
            ratio = base / now
            verdict = "ok"
            if ratio > SLOWDOWN_LIMIT:
                verdict = f"FAIL (> {SLOWDOWN_LIMIT:.0f}x slowdown)"
                failures += 1
            print(f"{'FAIL' if verdict != 'ok' else '  ok'} n={n}: {field}: "
                  f"committed {base:.0f}, fresh {now:.0f} "
                  f"({ratio:.2f}x slower) {verdict if verdict != 'ok' else ''}")

    if failures:
        print(f"bench_diff: {failures} failure(s) across sizes {common}")
        sys.exit(1)
    print(f"bench_diff: clean across sizes {common}")


if __name__ == "__main__":
    main()
