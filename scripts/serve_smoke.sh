#!/usr/bin/env bash
# End-to-end smoke of the statsize timing daemon: starts `statsize serve`
# on a Unix socket with an always-NaN fault plan wired into every solve,
# drives one scripted client session through every robustness path —
# served analyze/whatif, typed breakdown from the injected fault, a
# graceful-degradation reply and a typed timeout from hopeless
# deadlines, quarantine after the breaker trips, a stats snapshot — then
# SIGTERMs the daemon and asserts the drain: exit status 0, one reply
# per request, typed error codes where expected, and a final counter
# line satisfying submitted = served + degraded + shed + refused.
#
# Usage: scripts/serve_smoke.sh [path-to-statsize]
# (defaults to the dune build; run `dune build bin/statsize.exe` first,
# or pass a binary.)
set -u

STATSIZE="${1:-_build/default/bin/statsize.exe}"
if [ ! -x "$STATSIZE" ]; then
  echo "serve_smoke: $STATSIZE not found or not executable" >&2
  exit 2
fi

WORK="$(mktemp -d)"
SOCK="$WORK/statsize.sock"
DAEMON_ERR="$WORK/daemon.stderr"
REPLIES="$WORK/replies.jsonl"
trap 'kill "$DAEMON_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  echo "---- daemon stderr ----" >&2
  cat "$DAEMON_ERR" >&2 || true
  echo "---- replies ----" >&2
  cat "$REPLIES" >&2 || true
  exit 1
}

# Breaker threshold 2: the two faulted solves trip it, the third size
# request must come back quarantined.
"$STATSIZE" serve --circuits fig2,tree --socket "$SOCK" \
  --breaker-threshold 2 --fault nan-value@always 2>"$DAEMON_ERR" &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died before creating socket"
  sleep 0.1
done
[ -S "$SOCK" ] || fail "socket $SOCK never appeared"

# The scripted session.  recovery:false keeps the faulted solves cheap:
# one breakdown each, no ladder.
"$STATSIZE" serve --connect "$SOCK" >"$REPLIES" <<'EOF'
{"op":"analyze","id":1,"circuit":"tree"}
{"op":"whatif","id":2,"circuit":"tree","deltas":[[0,2.0]]}
{"op":"size","id":3,"circuit":"fig2","objective":{"kind":"min-delay","k":3},"recovery":false,"max_evals":400}
{"op":"size","id":4,"circuit":"fig2","objective":{"kind":"min-delay","k":3},"recovery":false,"max_evals":400}
{"op":"size","id":5,"circuit":"fig2","objective":{"kind":"min-delay","k":3},"recovery":false,"max_evals":400}
{"op":"analyze","id":6,"circuit":"tree","deadline_ms":0.000001}
{"op":"gradient","id":7,"circuit":"tree","seed":"mu","deadline_ms":0.000001}
{"op":"analyze","id":8,"circuit":"nowhere"}
{"op":"stats","id":9}
EOF
CLIENT_STATUS=$?
[ "$CLIENT_STATUS" -eq 0 ] || fail "client exited $CLIENT_STATUS"

# One reply line per request.
N_REPLIES=$(wc -l <"$REPLIES")
[ "$N_REPLIES" -eq 9 ] || fail "expected 9 replies, got $N_REPLIES"

expect() { # expect <id> <pattern> <label>
  grep -F "\"id\":$1," "$REPLIES" | grep -qF "$2" \
    || fail "reply $1 lacks $2 ($3)"
}

expect 1 '"ok":true'             "analyze served"
expect 1 '"degraded":false'      "analyze not degraded"
expect 2 '"ok":true'             "whatif served"
expect 3 '"code":"breakdown"'    "faulted size -> typed breakdown"
expect 4 '"code":"breakdown"'    "second faulted size -> typed breakdown"
expect 5 '"code":"quarantined"'  "breaker tripped -> quarantined"
expect 6 '"degraded":true'       "hopeless-deadline analyze degrades"
expect 7 '"code":"timeout"'      "hopeless-deadline gradient -> typed timeout"
expect 8 '"code":"unknown_circuit"' "unknown circuit -> typed error"
expect 9 '"ok":true'             "stats served"
expect 9 '"submitted"'           "stats carries the conservation counters"
expect 9 '"breakers"'            "stats carries breaker states"

# SIGTERM: clean drain, exit 0, final counter line balances.
kill -TERM "$DAEMON_PID"
DAEMON_STATUS=0
wait "$DAEMON_PID" || DAEMON_STATUS=$?
[ "$DAEMON_STATUS" -eq 0 ] || fail "daemon exited $DAEMON_STATUS on SIGTERM"

COUNTS=$(grep -o 'drained; [0-9]* submitted = [0-9]* served + [0-9]* degraded + [0-9]* shed + [0-9]* refused' "$DAEMON_ERR") \
  || fail "daemon printed no drain counter line"
read -r SUB SRV DEG SHD REF <<<"$(echo "$COUNTS" | grep -o '[0-9]*' | tr '\n' ' ')"
[ "$SUB" -eq 9 ] || fail "daemon counted $SUB submitted, expected 9"
[ "$SUB" -eq $((SRV + DEG + SHD + REF)) ] \
  || fail "conservation violated: $SUB != $SRV + $DEG + $SHD + $REF"
[ "$DEG" -eq 1 ] || fail "expected exactly 1 degraded, got $DEG"
[ "$SRV" -eq 3 ] || fail "expected 3 served (analyze, whatif, stats), got $SRV"

echo "serve_smoke: OK ($SUB submitted = $SRV served + $DEG degraded + $SHD shed + $REF refused)"
