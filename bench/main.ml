(* Benchmark harness.

   Two halves:

   1. The table harness regenerates every table and figure of the paper's
      evaluation (see DESIGN.md's per-experiment index): Table 1 (large
      benchmark circuits), Table 2 (tree circuit), Table 3 (tree speed
      factors), the Section-5 worked example, the Section-4 conformance
      (yield) claim, the Monte-Carlo accuracy figure and the ablations.

   2. Bechamel micro-benchmarks of the primitives (Clark max, SSTA forward
      and adjoint sweeps, deterministic STA, BLIF parsing, solver runs) —
      one Test.make per operation, plus one per paper table so the cost of
      regenerating each artefact is itself measured.

   Usage:
     dune exec bench/main.exe             # tables then micro-benchmarks
     dune exec bench/main.exe -- tables   # tables only
     dune exec bench/main.exe -- micro    # micro-benchmarks only
     dune exec bench/main.exe -- table1|table2|table3|example|yield|mc|ablation
     dune exec bench/main.exe -- --jobs 4 parallel   # serial vs pooled SSTA
     dune exec bench/main.exe -- --jobs 4 mcsta      # serial vs pooled MC sampling
     dune exec bench/main.exe -- incremental         # incremental vs scratch solves
     dune exec bench/main.exe -- --jobs 4 table1     # pooled table regeneration

   [--jobs N] creates an N-domain Util.Pool; the sections that evaluate
   large circuits (table1, scale, parallel) thread it into the SSTA
   sweeps.  The [parallel] section checks serial/parallel bit-identity
   and reports the measured speedup on a >= 2000-gate circuit. *)

let model = Circuit.Sigma_model.paper_default

let section name f =
  Printf.printf "==== %s ====\n%!" name;
  let t0 = Sys.time () in
  f ();
  Printf.printf "[%s: %.1f s CPU]\n\n%!" name (Sys.time () -. t0)

let run_table1 ?pool () =
  section "Table 1: statistical sizing of large benchmark circuits" (fun () ->
      Experiments.Table1.(print (run ~model ?pool ())))

let run_table2 () =
  section "Table 2: tree circuit objectives and constraints" (fun () ->
      Experiments.Table2.(print (run ~model ())))

let run_table3 () =
  section "Table 3: tree speed factors" (fun () ->
      Experiments.Table3.(print (run ~model ())))

let run_example () =
  section "Section 5 example (fig. 2, eq. 18)" (fun () ->
      Experiments.Example_fig2.(print (run ~model ())))

let run_yield () =
  section "Conformance / yield claim (50% / 84.1% / 99.8%)" (fun () ->
      (* The tree respects the independence assumption exactly; the apex2
         stand-in shows the reconvergence-correlation error the paper lists
         as future work. *)
      Experiments.Yield_exp.(print (run ~model ~net:(Circuit.Generate.tree ()) ()));
      Experiments.Yield_exp.(print (run ~model ())))

let run_mc () =
  section "Analytic operators vs Monte Carlo" (fun () ->
      Experiments.Mc_accuracy.(print (run ~model ())))

let run_corner () =
  section "Corner-analysis pessimism (Section 1 motivation)" (fun () ->
      Experiments.Corner_exp.(print (run ~model ())))

let run_scale ?pool () =
  section "Scalability sweep" (fun () ->
      Experiments.Scale_exp.(print (run ~model ?pool ())))

let run_ablation () =
  section "Ablations (sigma model, eq14/eq15 form, deterministic baseline)"
    (fun () -> Experiments.Ablation.(print (run ())))

let run_extensions () =
  section "Extensions (the paper's future work, implemented)" (fun () ->
      Experiments.Nary_exp.(print (run ()));
      Experiments.Correlation_exp.(print (run ~model ()));
      Experiments.Power_exp.(print (run ~model ()));
      Experiments.Robust_exp.(print (run ()));
      (* EXT-PARETO: the full area-delay curve whose endpoints are Table 1's
         first two rows. *)
      Sizing.Sweep.print
        (Sizing.Sweep.area_delay ~model ~k:3. ~points:6 (Circuit.Generate.apex2_like ())))

let run_tables ?pool () =
  run_example ();
  run_table2 ();
  run_table3 ();
  run_yield ();
  run_mc ();
  run_corner ();
  run_ablation ();
  run_extensions ();
  run_table1 ?pool ();
  run_scale ?pool ()

(* ---- serial vs parallel SSTA ----------------------------------------------- *)

(* Wall-clock per-call seconds of [f] (the monotonic clock — [Sys.time]
   sums CPU over domains and would hide any speedup). *)
let wall_time_per_call ~reps f =
  ignore (f ());
  let t0 = Util.Instr.now_ns () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  float_of_int (Util.Instr.now_ns () - t0) *. 1e-9 /. float_of_int reps

let run_parallel ~jobs () =
  section
    (Printf.sprintf "Parallel levelized SSTA (jobs=%d, %d cores available)" jobs
       (Domain.recommended_domain_count ()))
    (fun () ->
      let spec =
        {
          Circuit.Generate.default_spec with
          Circuit.Generate.n_gates = 2400;
          n_pis = 96;
          target_depth = 12;
          seed = 77;
        }
      in
      let net = Circuit.Generate.random_dag spec in
      let sizes = Circuit.Netlist.min_sizes net in
      let seed = Sta.Ssta.mu_plus_k_sigma_seed 3. in
      Format.printf "%a@." Circuit.Netlist.pp_summary net;
      let reps = 20 in
      let serial_analyze () = Sta.Ssta.analyze ~model net ~sizes in
      let serial_grad () = Sta.Ssta.value_and_gradient ~model net ~sizes ~seed in
      let res_s, grad_s = serial_grad () in
      let t_a_serial = wall_time_per_call ~reps serial_analyze in
      let t_g_serial = wall_time_per_call ~reps serial_grad in
      let t = Util.Table.create ~header:[ "sweep"; "jobs"; "time/run"; "speedup"; "bit-identical" ] in
      for i = 1 to 4 do
        Util.Table.set_align t i Util.Table.Right
      done;
      let ms s = Printf.sprintf "%.2f ms" (s *. 1e3) in
      Util.Table.add_row t [ "analyze"; "1"; ms t_a_serial; "1.00x"; "-" ];
      Util.Table.add_row t [ "value_and_gradient"; "1"; ms t_g_serial; "1.00x"; "-" ];
      if jobs > 1 then
        Util.Pool.with_pool ~jobs (fun pool ->
            let par_analyze () = Sta.Ssta.analyze ~pool ~model net ~sizes in
            let par_grad () =
              Sta.Ssta.value_and_gradient ~pool ~model net ~sizes ~seed
            in
            let res_p, grad_p = par_grad () in
            let bits = Int64.bits_of_float in
            let same_normal (a : Statdelay.Normal.t) (b : Statdelay.Normal.t) =
              Int64.equal (bits a.Statdelay.Normal.mu) (bits b.Statdelay.Normal.mu)
              && Int64.equal (bits a.Statdelay.Normal.var) (bits b.Statdelay.Normal.var)
            in
            let identical =
              same_normal res_s.Sta.Ssta.circuit res_p.Sta.Ssta.circuit
              && Array.for_all2 same_normal res_s.Sta.Ssta.arrival
                   res_p.Sta.Ssta.arrival
              && Array.for_all2
                   (fun (a : float) b -> Int64.equal (bits a) (bits b))
                   grad_s grad_p
            in
            let t_a_par = wall_time_per_call ~reps par_analyze in
            let t_g_par = wall_time_per_call ~reps par_grad in
            let row name ts tp =
              Util.Table.add_row t
                [
                  name;
                  string_of_int jobs;
                  ms tp;
                  Printf.sprintf "%.2fx" (ts /. tp);
                  (if identical then "yes" else "NO");
                ]
            in
            row "analyze" t_a_serial t_a_par;
            row "value_and_gradient" t_g_serial t_g_par;
            if not identical then
              Printf.printf "ERROR: parallel results differ from serial!\n")
      else
        Printf.printf "(pass --jobs N with N > 1 to time the pooled path)\n";
      Util.Table.print t;
      print_newline ())

(* ---- resilience layer ------------------------------------------------------- *)

(* Measures the guard overhead on a healthy solve and drills the
   recovery ladder with injected faults, printing the trail each fault
   class takes.  The guard adds an O(dim) finiteness scan per
   evaluation — visible on the toy tree where an SSTA evaluation is
   sub-microsecond, amortised to noise on real circuits — and never
   changes a bit of the result. *)
let run_resilience () =
  section "Resilience: guard overhead and recovery ladder" (fun () ->
      let net = Circuit.Generate.tree () in
      let obj = Sizing.Objective.Min_delay 3. in
      let solve ?instrument ?(guard = true) () =
        let solver =
          {
            Sizing.Engine.default_options.Sizing.Engine.solver with
            Nlp.Auglag.guard;
          }
        in
        Sizing.Engine.solve
          ~options:
            {
              Sizing.Engine.default_options with
              Sizing.Engine.solver = solver;
              instrument;
            }
          ~model net obj
      in
      let t_guarded = wall_time_per_call ~reps:5 (fun () -> solve ()) in
      let t_raw = wall_time_per_call ~reps:5 (fun () -> solve ~guard:false ()) in
      let s_g = solve () and s_r = solve ~guard:false () in
      Printf.printf
        "guarded %.2f ms, unguarded %.2f ms (overhead %+.1f%%), bit-identical: %s\n\n"
        (t_guarded *. 1e3) (t_raw *. 1e3)
        (100. *. (t_guarded -. t_raw) /. t_raw)
        (if s_g.Sizing.Engine.sizes = s_r.Sizing.Engine.sizes then "yes" else "NO");
      let t =
        Util.Table.create ~header:[ "injected fault"; "termination"; "ladder" ]
      in
      let drill name sites =
        let plan = Util.Fault.plan sites in
        let inject problem =
          Nlp.Problem.map_components
            (fun ~component f ->
              Util.Fault.wrap plan
                ~component:(Nlp.Problem.component_index component)
                f)
            problem
        in
        let s = solve ~instrument:inject () in
        Util.Table.add_row t
          [
            name;
            Nlp.Auglag.termination_name s.Sizing.Engine.termination;
            (match s.Sizing.Engine.recovery with
            | [] -> "(none)"
            | l ->
                String.concat " -> "
                  (List.map
                     (fun (a : Sizing.Engine.attempt) ->
                       Sizing.Engine.rung_name a.Sizing.Engine.rung)
                     l));
          ]
      in
      let site kind trigger =
        { Util.Fault.kind; Util.Fault.component = Some 0; Util.Fault.trigger }
      in
      drill "none" [];
      drill "nan value, first eval" [ site Util.Fault.Nan_value (Util.Fault.First 1) ];
      drill "inf gradient, first eval"
        [ site Util.Fault.Inf_gradient (Util.Fault.First 1) ];
      drill "nan value, first 3" [ site Util.Fault.Nan_value (Util.Fault.First 3) ];
      drill "nan value, always" [ site Util.Fault.Nan_value Util.Fault.Always ];
      Util.Table.print t;
      print_newline ())

(* ---- GP cross-check ----------------------------------------------------------- *)

(* Differential table for the geometric-programming backend: GP vs the
   deterministic greedy at equal area (the GP can never be slower on the
   mean model — it is the global optimum), the GP-vs-augmented-Lagrangian
   objective gap at sigma = 0 (the statistical problem at sigma = 0 IS
   the GP, so the two solvers must agree), and the warm-start evaluation
   savings on apex2*.  Exits non-zero when a certificate fails or the
   warm start stops saving evaluations, so CI can use this section as a
   regression smoke test. *)
let run_gp () =
  section "Geometric programming: GP vs greedy, GP vs auglag, warm starts" (fun () ->
      let failed = ref false in
      let flag fmt = Printf.ksprintf (fun s -> failed := true; Printf.printf "FAIL %s\n" s) fmt in
      let circuits =
        [ ("fig2", Some (Circuit.Generate.example_fig2 ()));
          ("tree", Some (Circuit.Generate.tree ()));
          ( "cla4",
            (match
               List.find_opt Sys.file_exists
                 [ "examples/cla4.bench"; "../examples/cla4.bench" ]
             with
            | None -> None
            | Some p -> (
                match
                  Circuit.Bench_format.parse_file
                    ~library:(Circuit.Cell.Library.default ()) p
                with
                | Ok net -> Some net
                | Error _ -> None)) );
          ("apex2*", Some (Circuit.Generate.apex2_like ()));
        ]
      in
      let t =
        Util.Table.create
          ~header:
            [ "circuit"; "greedy delay"; "GP delay"; "KKT res"; "gap m/t"; "newton"; "s" ]
      in
      List.iter
        (fun (name, net) ->
          match net with
          | None -> Printf.printf "(%s: circuit file not found, skipped)\n" name
          | Some net ->
              let base = Sizing.Baseline.minimize_delay net in
              let sol =
                Sizing.Gp.solve net
                  (Sizing.Gp.Min_delay { area_budget = Some base.Sizing.Baseline.area })
              in
              (match sol.Sizing.Gp.status with
              | Sizing.Gp.Optimal -> ()
              | _ -> flag "%s: GP not optimal at equal area" name);
              let res = Nlp.Check.kkt_residual sol.Sizing.Gp.kkt in
              if res >= 1e-6 then flag "%s: KKT residual %.3e >= 1e-6" name res;
              if sol.Sizing.Gp.mean_delay > base.Sizing.Baseline.delay *. (1. +. 1e-6)
              then
                flag "%s: GP delay %.6f > greedy %.6f at equal area" name
                  sol.Sizing.Gp.mean_delay base.Sizing.Baseline.delay;
              Util.Table.add_row t
                [
                  name;
                  Printf.sprintf "%.4f" base.Sizing.Baseline.delay;
                  Printf.sprintf "%.4f" sol.Sizing.Gp.mean_delay;
                  Printf.sprintf "%.1e" res;
                  Printf.sprintf "%.1e" sol.Sizing.Gp.duality_gap;
                  string_of_int sol.Sizing.Gp.newton_iterations;
                  Printf.sprintf "%.3f" sol.Sizing.Gp.wall_time;
                ])
        circuits;
      Util.Table.print t;
      print_newline ();
      (* At sigma = 0 the statistical min-delay problem IS the mean GP:
         the two independently-built solvers must land on the same
         objective (the auglag solve is local, the GP is global with a
         certificate, so agreement cross-validates both). *)
      List.iter
        (fun (name, net) ->
          match net with
          | None -> ()
          | Some net ->
              let s =
                Sizing.Engine.solve ~model:Circuit.Sigma_model.Zero net
                  (Sizing.Objective.Min_delay 0.)
              in
              let sw =
                Sizing.Engine.solve
                  ~options:
                    { Sizing.Engine.default_options with Sizing.Engine.warm_start = `Gp }
                  ~model:Circuit.Sigma_model.Zero net (Sizing.Objective.Min_delay 0.)
              in
              let g = Sizing.Gp.solve net (Sizing.Gp.Min_delay { area_budget = None }) in
              let gap mu = (mu -. g.Sizing.Gp.mean_delay) /. g.Sizing.Gp.mean_delay in
              Printf.printf
                "%-7s sigma=0: GP %.6f, auglag cold %+.2e, auglag GP-warm %+.2e\n" name
                g.Sizing.Gp.mean_delay
                (gap s.Sizing.Engine.mu)
                (gap sw.Sizing.Engine.mu);
              (* The GP optimum is global: the local solver can land above
                 it (apex2* cold is ~1.2% high - a real local minimum) but
                 can never beat it, and warm-started at the GP point it
                 must stay there. *)
              if gap s.Sizing.Engine.mu < -1e-4 then
                flag "%s: auglag beat the 'global' GP by %.2e - GP optimum is wrong"
                  name (gap s.Sizing.Engine.mu);
              if Float.abs (gap sw.Sizing.Engine.mu) > 1e-3 then
                flag "%s: GP-warm-started auglag drifted %.2e off the GP optimum" name
                  (gap sw.Sizing.Engine.mu))
        circuits;
      print_newline ();
      (* Warm-start savings: solver evaluations to converge on apex2*,
         cold vs GP-warm-started (the GP's own Newton iterations are not
         solver evaluations - its cost shows in the table above). *)
      let net = Circuit.Generate.apex2_like () in
      let obj = Sizing.Objective.Min_delay 3. in
      let cold = Sizing.Engine.solve ~model net obj in
      let warm =
        Sizing.Engine.solve
          ~options:{ Sizing.Engine.default_options with Sizing.Engine.warm_start = `Gp }
          ~model net obj
      in
      Printf.printf
        "apex2* min mu+3sigma: cold %d evaluations (mu %.4f), GP-warm %d evaluations \
         (mu %.4f)\n"
        cold.Sizing.Engine.evaluations cold.Sizing.Engine.mu
        warm.Sizing.Engine.evaluations warm.Sizing.Engine.mu;
      if not (cold.Sizing.Engine.converged && warm.Sizing.Engine.converged) then
        flag "apex2*: warm-start comparison did not converge on both paths";
      if warm.Sizing.Engine.evaluations >= cold.Sizing.Engine.evaluations then
        flag "apex2*: GP warm start no longer saves evaluations (%d >= %d)"
          warm.Sizing.Engine.evaluations cold.Sizing.Engine.evaluations;
      if !failed then exit 1)

(* ---- incremental re-timing --------------------------------------------------- *)

(* Runs the paper's area-minimisation solve twice — once re-timing every
   candidate from scratch, once through a shared Sta.Incr engine — and
   checks that the whole solver trajectory is bit-identical while only a
   fraction of the gates is re-evaluated per analysis.  Exits non-zero
   if the two solves diverge or the mean dirty-gate fraction reaches
   1.0 (i.e. the incremental path degenerated to full sweeps), so CI
   can use this section as a smoke test. *)
let run_incremental ?pool () =
  section "Incremental SSTA (dirty-cone re-timing) inside the solver" (fun () ->
      let cases =
        [
          ("apex1*", Circuit.Generate.apex1_like (), 0.69);
          ("k2*", Circuit.Generate.k2_like (), 0.65);
        ]
      in
      let t =
        Util.Table.create
          ~header:
            [
              "circuit";
              "objective";
              "scratch";
              "incremental";
              "speedup";
              "dirty fraction";
              "bit-identical";
            ]
      in
      for i = 2 to 5 do
        Util.Table.set_align t i Util.Table.Right
      done;
      let bad = ref false in
      List.iter
        (fun (name, net, fraction) ->
          let unsized = Sizing.Engine.solve ?pool ~model net Sizing.Objective.Min_area in
          let objective =
            Sizing.Objective.Min_area_bounded
              { k = 3.; bound = fraction *. unsized.Sizing.Engine.mu }
          in
          let timed f =
            let t0 = Util.Instr.now_ns () in
            let r = f () in
            (r, float_of_int (Util.Instr.now_ns () - t0) *. 1e-9)
          in
          let off =
            { Sizing.Engine.default_options with Sizing.Engine.incremental = false }
          in
          let s_off, t_off =
            timed (fun () -> Sizing.Engine.solve ~options:off ?pool ~model net objective)
          in
          let eng = Sta.Incr.create ?pool ~model net in
          let s_on, t_on =
            timed (fun () -> Sizing.Engine.solve ~timing:eng ?pool ~model net objective)
          in
          let bits = Int64.bits_of_float in
          let identical =
            Array.for_all2
              (fun (a : float) b -> Int64.equal (bits a) (bits b))
              s_off.Sizing.Engine.sizes s_on.Sizing.Engine.sizes
            && Int64.equal (bits s_off.Sizing.Engine.mu) (bits s_on.Sizing.Engine.mu)
            && Int64.equal (bits s_off.Sizing.Engine.sigma) (bits s_on.Sizing.Engine.sigma)
            && s_off.Sizing.Engine.evaluations = s_on.Sizing.Engine.evaluations
          in
          let frac = Sta.Incr.dirty_fraction eng in
          if frac >= 1.0 || not identical then bad := true;
          Util.Table.add_row t
            [
              name;
              Sizing.Objective.describe objective;
              Printf.sprintf "%.2f s" t_off;
              Printf.sprintf "%.2f s" t_on;
              Printf.sprintf "%.2fx" (t_off /. t_on);
              Printf.sprintf "%.3f" frac;
              (if identical then "yes" else "NO");
            ])
        cases;
      Util.Table.print t;
      if !bad then begin
        Printf.printf
          "ERROR: incremental solve diverged from scratch or dirty fraction >= 1.0\n";
        exit 1
      end;
      print_newline ())

(* ---- flat timing arena ------------------------------------------------------ *)

(* Differential + allocation smoke for the structure-of-arrays arena
   (DESIGN.md Section 9): the arena sweeps must agree with the boxed
   reference to the last bit, run materially faster serially, and a
   steady-state forward+reverse pair must stay under a committed
   words/eval ceiling.  Exits non-zero when identity or the ceiling is
   violated, so CI gates on this section. *)
let run_arena () =
  section "Flat timing arena: serial speedup, words/eval, bit-identity" (fun () ->
      let spec =
        {
          Circuit.Generate.default_spec with
          Circuit.Generate.n_gates = 2400;
          n_pis = 96;
          target_depth = 12;
          seed = 77;
        }
      in
      let net = Circuit.Generate.random_dag spec in
      let n_gates = Circuit.Netlist.n_gates net in
      let sizes = Circuit.Netlist.min_sizes net in
      let seed = Sta.Ssta.mu_plus_k_sigma_seed 3. in
      Format.printf "%a@." Circuit.Netlist.pp_summary net;
      let boxed () = Sta.Ssta.Boxed.value_and_gradient ~model net ~sizes ~seed in
      let res_b, grad_b = boxed () in
      let root = seed res_b in
      let arena = Sta.Arena.create net in
      (* The steady-state solver evaluation: raw sweeps on a reused
         arena, no result snapshot. *)
      let flat () =
        Sta.Ssta.forward_raw ~model arena ~sizes;
        Sta.Ssta.reverse_raw ~model arena ~d_mu:root.Sta.Ssta.d_mu
          ~d_var:root.Sta.Ssta.d_var
      in
      flat ();
      let res_a = Sta.Ssta.of_arena arena in
      let grad_a = Array.make n_gates 0. in
      Sta.Arena.gradient_into arena grad_a;
      let bits = Int64.bits_of_float in
      let same (x : float) y = Int64.equal (bits x) (bits y) in
      let same_normal (a : Statdelay.Normal.t) (b : Statdelay.Normal.t) =
        same a.Statdelay.Normal.mu b.Statdelay.Normal.mu
        && same a.Statdelay.Normal.var b.Statdelay.Normal.var
      in
      let identical =
        same_normal res_b.Sta.Ssta.circuit res_a.Sta.Ssta.circuit
        && Array.for_all2 same_normal res_b.Sta.Ssta.arrival res_a.Sta.Ssta.arrival
        && Array.for_all2 same_normal res_b.Sta.Ssta.gate_delay
             res_a.Sta.Ssta.gate_delay
        && Array.for_all2 same res_b.Sta.Ssta.loads res_a.Sta.Ssta.loads
        && Array.for_all2 same grad_b grad_a
      in
      let reps = 20 in
      let t_boxed = wall_time_per_call ~reps boxed in
      let t_flat = wall_time_per_call ~reps flat in
      let words_per_eval f =
        f ();
        Gc.full_major ();
        let w0 = Gc.minor_words () in
        for _ = 1 to reps do
          f ()
        done;
        (Gc.minor_words () -. w0) /. float_of_int reps
      in
      let w_boxed = words_per_eval (fun () -> ignore (boxed ())) in
      let w_flat = words_per_eval flat in
      (* Inlining canary: the dev profile compiles with -opaque, which
         blocks cross-library inlining of the Clark kernels — every call
         then boxes its float arguments.  The strict zero-allocation
         ceiling only holds when the kernels inline (release profile);
         otherwise the ceiling scales with the boxed kernel arguments. *)
      let canary =
        let out =
          Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 2
        in
        Bigarray.Array1.fill out 0.;
        (* Computed (not literal) float arguments: literals are static
           data and never allocate, computed ones box at every
           non-inlined call. *)
        let x = Sys.opaque_identity 0.5 in
        Gc.full_major ();
        let w0 = Gc.minor_words () in
        for _ = 1 to 1000 do
          Statdelay.Clark.add_into ~mu_a:(x +. 0.5) ~var_a:(x *. 0.2)
            ~mu_b:(x +. 1.5) ~var_b:(x *. 0.4) out 0
        done;
        ignore
          (Sys.opaque_identity
             (Statdelay.Clark.vget out 0 +. Statdelay.Clark.vget out 1));
        Gc.minor_words () -. w0
      in
      (* [Gc.minor_words] itself boxes its float result, so a perfectly
         clean loop still reads a few words; boxed kernel calls read
         thousands (>= 4 words per call over 1000 calls). *)
      let inlined = canary < 64. in
      let ceiling =
        if inlined then 512. else 128. *. float_of_int n_gates
      in
      let t =
        Util.Table.create
          ~header:[ "sweep pair (fwd+rev)"; "time/run"; "words/eval"; "bit-identical" ]
      in
      for i = 1 to 3 do
        Util.Table.set_align t i Util.Table.Right
      done;
      let ms s = Printf.sprintf "%.2f ms" (s *. 1e3) in
      Util.Table.add_row t
        [ "boxed reference"; ms t_boxed; Printf.sprintf "%.0f" w_boxed; "-" ];
      Util.Table.add_row t
        [
          "arena (raw)";
          ms t_flat;
          Printf.sprintf "%.0f" w_flat;
          (if identical then "yes" else "NO");
        ];
      Util.Table.print t;
      Printf.printf
        "serial speedup %.2fx, words/eval reduction %.0fx (kernels inlined: %s, \
         ceiling %.0f)\n"
        (t_boxed /. t_flat)
        (if w_flat > 0. then w_boxed /. w_flat else infinity)
        (if inlined then "yes" else "no — dev profile, -opaque")
        ceiling;
      if not identical then begin
        Printf.printf "ERROR: arena results differ from the boxed reference!\n";
        exit 1
      end;
      if w_flat > ceiling then begin
        Printf.printf "ERROR: arena words/eval %.0f exceeds the committed ceiling %.0f\n"
          w_flat ceiling;
        exit 1
      end;
      print_newline ())

(* ---- timing-as-a-service daemon --------------------------------------------- *)

(* Drives an in-process Server through its programmatic API: per-kind
   request latency against a warmed engine (the daemon's whole point is
   that the second analyze is a dirty-cone sweep, not a full one), the
   served-vs-batch bit-identity spot check, and an overload burst
   against a tiny queue showing the shedding policy sacrificing solves
   before analyses.  Exits non-zero when identity or the conservation
   law breaks, so CI can gate on this section. *)
let run_serve () =
  section "Serve: warmed-engine latency, shedding, conservation" (fun () ->
      let net = Circuit.Generate.apex2_like () in
      let sizes = Array.map (fun s -> s +. 0.25) (Circuit.Netlist.min_sizes net) in
      let t = Serve.Server.create () in
      Serve.Server.add_circuit t ~name:"apex2" ~model net;
      Serve.Server.start t;
      (* One blocking request round-trip through submit_line. *)
      let roundtrip line =
        let m = Mutex.create () and c = Condition.create () in
        let answer = ref None in
        Serve.Server.submit_line t
          ~reply:(fun l ->
            Mutex.lock m;
            answer := Some l;
            Condition.signal c;
            Mutex.unlock m)
          line;
        Mutex.lock m;
        while !answer = None do
          Condition.wait c m
        done;
        let l = Option.get !answer in
        Mutex.unlock m;
        l
      in
      let req body =
        Serve.Protocol.encode_request
          {
            Serve.Protocol.id = Serve.Json.Null;
            circuit = Some "apex2";
            deadline_ms = None;
            max_evals = None;
            body;
          }
      in
      let analyze =
        req (Serve.Protocol.Analyze { sizes = Serve.Protocol.Explicit sizes })
      in
      let tbl = Util.Table.create ~header:[ "request"; "time/round-trip" ] in
      Util.Table.set_align tbl 1 Util.Table.Right;
      let ms s = Printf.sprintf "%.3f ms" (s *. 1e3) in
      let time name line =
        let s = wall_time_per_call ~reps:20 (fun () -> roundtrip line) in
        Util.Table.add_row tbl [ name; ms s ]
      in
      let cold = wall_time_per_call ~reps:1 (fun () -> roundtrip analyze) in
      Util.Table.add_row tbl [ "analyze (cold engine)"; ms cold ];
      time "analyze (warm)" analyze;
      time "whatif (1 gate)" (req (Serve.Protocol.Whatif { deltas = [| (0, 2.0) |] }));
      time "gradient mu+3sigma"
        (req
           (Serve.Protocol.Gradient
              {
                sizes = Serve.Protocol.Explicit sizes;
                seed = Serve.Protocol.Seed_mu_k_sigma 3.;
              }));
      time "health" (req Serve.Protocol.Health);
      Util.Table.print tbl;
      (* Bit-identity: the served analyze renders the identical result
         object a batch evaluation does. *)
      let served =
        match Serve.Protocol.decode_response (roundtrip analyze) with
        | Ok { payload; _ } -> Serve.Json.to_string (Serve.Protocol.result_json payload)
        | Error m -> failwith m
      in
      let batch =
        let arena = Sta.Arena.create net in
        let r = Sta.Ssta.analyze ~arena ~model net ~sizes in
        Serve.Json.to_string
          (Serve.Protocol.result_json
             (Serve.Protocol.Analysis
                {
                  mu = Statdelay.Normal.mu r.Sta.Ssta.circuit;
                  var = Statdelay.Normal.var r.Sta.Ssta.circuit;
                  area = Circuit.Netlist.area net ~sizes;
                  n_gates = Circuit.Netlist.n_gates net;
                }))
      in
      Printf.printf "served == batch (string = Int64 bits): %s\n"
        (if String.equal served batch then "yes" else "NO");
      Serve.Server.stop ~drain:false t;
      (* Overload burst against a queue of 4, executor delayed: solves
         are shed before the analyses that arrive after them. *)
      let t2 =
        Serve.Server.create
          ~config:{ Serve.Server.default_config with queue_capacity = 4 }
          ()
      in
      Serve.Server.add_circuit t2 ~name:"tree" ~model (Circuit.Generate.tree ());
      let shed_kinds = ref [] in
      let lock = Mutex.create () in
      let reply line =
        match Serve.Protocol.decode_response line with
        | Ok { kind; payload = Serve.Protocol.Error { code = Serve.Protocol.Overloaded; _ }; _ }
          ->
            Mutex.lock lock;
            shed_kinds := kind :: !shed_kinds;
            Mutex.unlock lock
        | _ -> ()
      in
      let burst body =
        Serve.Server.submit_line t2 ~reply
          (Serve.Protocol.encode_request
             {
               Serve.Protocol.id = Serve.Json.Null;
               circuit = Some "tree";
               deadline_ms = None;
               max_evals = None;
               body;
             })
      in
      for _ = 1 to 4 do
        burst
          (Serve.Protocol.Size
             { objective = Serve.Protocol.Min_delay 3.; recovery = true })
      done;
      for _ = 1 to 4 do
        burst (Serve.Protocol.Analyze { sizes = Serve.Protocol.Committed })
      done;
      (* Start in drain mode: the queue's survivors answer shutting_down
         without burning solve time — this section measures shedding,
         not the solver. *)
      Serve.Server.stop ~drain:true t2;
      Serve.Server.start t2;
      Serve.Server.stop t2;
      let submitted, served_n, degraded, shed, refused = Serve.Server.counters t2 in
      Printf.printf
        "burst of 8 into a queue of 4: %d shed (%s), conservation %d = %d + %d + %d + %d: %s\n\n"
        shed
        (String.concat ", " (List.rev !shed_kinds))
        submitted served_n degraded shed refused
        (if submitted = served_n + degraded + shed + refused then "holds"
         else "VIOLATED");
      if not (String.equal served batch) then begin
        Printf.printf "ERROR: served analyze differs from batch evaluation!\n";
        exit 1
      end;
      if submitted <> served_n + degraded + shed + refused then begin
        Printf.printf "ERROR: conservation law violated!\n";
        exit 1
      end)

(* ---- batched Monte Carlo oracle -------------------------------------------- *)

let run_mcsta ~jobs () =
  section
    (Printf.sprintf "Batched Monte Carlo SSTA oracle (jobs=%d, %d cores available)"
       jobs
       (Domain.recommended_domain_count ()))
    (fun () ->
      let spec =
        {
          Circuit.Generate.default_spec with
          Circuit.Generate.n_gates = 2400;
          n_pis = 96;
          target_depth = 12;
          seed = 77;
        }
      in
      let net = Circuit.Generate.random_dag spec in
      let sizes = Circuit.Netlist.min_sizes net in
      Format.printf "%a@." Circuit.Netlist.pp_summary net;
      let n = 5_000 in
      let sample ?pool ?(batch = 1024) () =
        Sta.Mcsta.sample ?pool ~batch ~seed:7 ~model net ~sizes ~n
      in
      let serial = sample () in
      let t_serial = wall_time_per_call ~reps:2 (fun () -> sample ()) in
      let bits = Int64.bits_of_float in
      let same a b =
        Array.length a = Array.length b
        && Array.for_all2 (fun (x : float) y -> Int64.equal (bits x) (bits y)) a b
      in
      (* Batch size must not change a single bit of the output. *)
      let batch_identical =
        List.for_all (fun batch -> same serial (sample ~batch ())) [ 1; 37; n ]
      in
      let t = Util.Table.create ~header:[ "jobs"; "samples/s"; "speedup"; "bit-identical" ] in
      for i = 0 to 3 do
        Util.Table.set_align t i Util.Table.Right
      done;
      let rate s = Printf.sprintf "%.0f" (float_of_int n /. s) in
      Util.Table.add_row t
        [ "1"; rate t_serial; "1.00x"; (if batch_identical then "yes" else "NO") ];
      if jobs > 1 then
        Util.Pool.with_pool ~jobs (fun pool ->
            let pooled = sample ~pool () in
            let t_pool = wall_time_per_call ~reps:2 (fun () -> sample ~pool ()) in
            Util.Table.add_row t
              [
                string_of_int jobs;
                rate t_pool;
                Printf.sprintf "%.2fx" (t_serial /. t_pool);
                (if same serial pooled then "yes" else "NO");
              ])
      else Printf.printf "(pass --jobs N with N > 1 to time the pooled path)\n";
      Util.Table.print t;
      if not batch_identical then
        Printf.printf "ERROR: batch size changed the sampled values!\n";
      print_newline ())

(* ---- micro-benchmarks ------------------------------------------------------ *)

open Bechamel
open Toolkit

let micro_tests () =
  let open Statdelay in
  let a = Normal.make ~mu:1.0 ~sigma:0.3 in
  let b = Normal.make ~mu:1.2 ~sigma:0.5 in
  let tree = Circuit.Generate.tree () in
  let apex2 = Circuit.Generate.apex2_like () in
  let tree_sizes = Circuit.Netlist.min_sizes tree in
  let apex2_sizes = Circuit.Netlist.min_sizes apex2 in
  let blif_text = Circuit.Blif.to_string apex2 in
  let blif_lib =
    (* to_string names cells from the default library *)
    Circuit.Cell.Library.default ()
  in
  let rng = Util.Rng.create 1 in
  let ops =
    Test.make_grouped ~name:"ops"
      [
        Test.make ~name:"normal_add" (Staged.stage (fun () -> Normal.add a b));
        Test.make ~name:"clark_max2" (Staged.stage (fun () -> Clark.max2 a b));
        Test.make ~name:"clark_max2_full" (Staged.stage (fun () -> Clark.max2_full a b));
        Test.make ~name:"normal_cdf" (Staged.stage (fun () -> Util.Special.normal_cdf 0.7));
      ]
  in
  let sta =
    Test.make_grouped ~name:"sta"
      [
        Test.make ~name:"dsta_apex2"
          (Staged.stage (fun () -> Sta.Dsta.analyze apex2 ~sizes:apex2_sizes));
        Test.make ~name:"ssta_tree"
          (Staged.stage (fun () -> Sta.Ssta.analyze ~model tree ~sizes:tree_sizes));
        Test.make ~name:"ssta_apex2"
          (Staged.stage (fun () -> Sta.Ssta.analyze ~model apex2 ~sizes:apex2_sizes));
        Test.make ~name:"ssta_gradient_apex2"
          (Staged.stage (fun () ->
               Sta.Ssta.gradient ~model apex2 ~sizes:apex2_sizes
                 ~seed:(Sta.Ssta.mu_plus_k_sigma_seed 3.)));
        Test.make ~name:"mc_sample_tree_x100"
          (Staged.stage (fun () ->
               Sta.Yield.sample_circuit_delays ~rng ~model tree ~sizes:tree_sizes ~n:100));
      ]
  in
  let infra =
    Test.make_grouped ~name:"infra"
      [
        Test.make ~name:"blif_parse_apex2"
          (Staged.stage (fun () ->
               match Circuit.Blif.parse_string ~library:blif_lib blif_text with
               | Ok n -> n
               | Error _ -> assert false));
        Test.make ~name:"generate_apex2" (Staged.stage Circuit.Generate.apex2_like);
      ]
  in
  let solves =
    Test.make_grouped ~name:"solve"
      [
        Test.make ~name:"tree_min_mu3sigma"
          (Staged.stage (fun () ->
               Sizing.Engine.solve ~model tree (Sizing.Objective.Min_delay 3.)));
        Test.make ~name:"tree_min_sigma"
          (Staged.stage (fun () ->
               Sizing.Engine.solve ~model tree (Sizing.Objective.Min_sigma { mu = 6.5 })));
        Test.make ~name:"fig2_full_formulation"
          (Staged.stage (fun () ->
               Sizing.Formulate.solve
                 (Sizing.Formulate.build ~model (Circuit.Generate.example_fig2 ())
                    (Sizing.Objective.Min_delay 3.))));
      ]
  in
  (* One Test.make per paper table: the cost of regenerating the artefact. *)
  let tables =
    Test.make_grouped ~name:"tables"
      [
        Test.make ~name:"table2_rows"
          (Staged.stage (fun () -> Experiments.Table2.run ~model ()));
        Test.make ~name:"table3_rows"
          (Staged.stage (fun () -> Experiments.Table3.run ~model ~target_mu:6.5 ()));
        Test.make ~name:"example_fig2"
          (Staged.stage (fun () -> Experiments.Example_fig2.run ~model ()));
        Test.make ~name:"table1_apex2_row"
          (Staged.stage (fun () ->
               Sizing.Engine.solve ~model apex2 (Sizing.Objective.Min_delay 0.)));
      ]
  in
  Test.make_grouped ~name:"statsize" [ ops; sta; infra; solves; tables ]

let run_micro () =
  Printf.printf "==== micro-benchmarks (Bechamel, monotonic clock) ====\n%!";
  let cfg = Benchmark.cfg ~limit:1500 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (micro_tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
        in
        (name, ns) :: acc)
      results []
  in
  let t = Util.Table.create ~header:[ "benchmark"; "time/run" ] in
  Util.Table.set_align t 1 Util.Table.Right;
  let pretty ns =
    if ns < 1e3 then Printf.sprintf "%.1f ns" ns
    else if ns < 1e6 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else Printf.sprintf "%.2f s" (ns /. 1e9)
  in
  List.iter
    (fun (name, ns) -> Util.Table.add_row t [ name; pretty ns ])
    (List.sort compare rows);
  Util.Table.print t;
  print_newline ()

(* Same inlining canary as run_arena / test_arena: computed float
   arguments to an in-place kernel allocate at every call unless the
   call inlined (dev's -opaque blocks cross-library inlining). *)
let kernels_inlined () =
  let out = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 2 in
  Bigarray.Array1.fill out 0.;
  let x = Sys.opaque_identity 0.5 in
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    Statdelay.Clark.add_into ~mu_a:(x +. 0.5) ~var_a:(x *. 0.2) ~mu_b:(x +. 1.5)
      ~var_b:(x *. 0.4) out 0
  done;
  ignore
    (Sys.opaque_identity (Statdelay.Clark.vget out 0 +. Statdelay.Clark.vget out 1));
  Gc.minor_words () -. w0 < 64.

(* ---- machine-readable benchmark snapshot ("json" section) -------------------

   Emits the BENCH_<date>.json scaling trajectory committed at the repo
   root and diffed by CI (scripts/bench_diff.py): per circuit size, the
   forward-sweep and gradient throughput of the flat arena, the level
   structure the cache-blocked sweep sees, allocation per evaluation,
   arena footprint and peak RSS.  Timing is min-of-5 (minimum over 5
   batches of [reps] sweeps), the estimator least sensitive to
   machine-share noise. *)

let json_default_sizes = [ 2_400; 24_000; 240_000; 1_000_000 ]

(* The generated-DAG family used across bench sections: wider and
   deeper as n grows, seed fixed. *)
let json_spec n =
  let n_pis, target_depth =
    match n with
    | 2_400 -> (96, 12)
    | 24_000 -> (300, 24)
    | 240_000 -> (1_000, 48)
    | 1_000_000 -> (2_000, 64)
    | _ ->
        ( max 16 (n / 500),
          max 8 (int_of_float (16. *. log10 (float_of_int n))) )
  in
  {
    Circuit.Generate.default_spec with
    Circuit.Generate.n_gates = n;
    n_pis;
    target_depth;
    seed = 77;
  }

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec scan () =
        match In_channel.input_line ic with
        | None -> 0
        | Some line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
            else scan ()
      in
      Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let arena_bytes (a : Sta.Arena.t) =
  let v (p : Sta.Arena.vec) = 8 * Bigarray.Array1.dim p in
  let iv (p : Sta.Arena.ivec) = 4 * Bigarray.Array1.dim p in
  v a.Sta.Arena.sizes + v a.Sta.Arena.load + v a.Sta.Arena.del
  + v a.Sta.Arena.arr + v a.Sta.Arena.pre + v a.Sta.Arena.opnd
  + v a.Sta.Arena.fosz + v a.Sta.Arena.pi + v a.Sta.Arena.pp
  + v a.Sta.Arena.adj + v a.Sta.Arena.dmu_t + v a.Sta.Arena.fadj
  + v a.Sta.Arena.grad + iv a.Sta.Arena.fi_b + iv a.Sta.Arena.fo_c
  + Bytes.length a.Sta.Arena.active

let json_one_size buf n =
  let spec = json_spec n in
  let t0 = Util.Instr.now_ns () in
  let net = Circuit.Generate.random_dag spec in
  let gen_s = float_of_int (Util.Instr.now_ns () - t0) /. 1e9 in
  let arena = Sta.Arena.create net in
  let sizes = Circuit.Netlist.min_sizes net in
  let fl = Circuit.Netlist.flat net in
  let lvl_off = fl.Circuit.Netlist.lvl_off in
  let levels = Array.length lvl_off - 1 in
  let wmin = ref max_int and wmax = ref 0 in
  for l = 0 to levels - 1 do
    let w = lvl_off.(l + 1) - lvl_off.(l) in
    if w < !wmin then wmin := w;
    if w > !wmax then wmax := w
  done;
  let n_gates = Circuit.Netlist.n_gates net in
  let reps = max 2 (2_000_000 / n_gates) in
  let min_of_5 f =
    (* warm-up *)
    f ();
    let best = ref infinity in
    for _ = 1 to 5 do
      let t0 = Util.Instr.now_ns () in
      for _ = 1 to reps do
        f ()
      done;
      let ms =
        float_of_int (Util.Instr.now_ns () - t0) /. 1e6 /. float_of_int reps
      in
      if ms < !best then best := ms
    done;
    !best
  in
  let fwd () = Sta.Ssta.forward_raw ~model arena ~sizes in
  let fwd_rev () =
    Sta.Ssta.forward_raw ~model arena ~sizes;
    Sta.Ssta.reverse_raw ~model arena ~d_mu:1. ~d_var:0.
  in
  let fwd_ms = min_of_5 fwd in
  let fwd_rev_ms = min_of_5 fwd_rev in
  let words_per_eval =
    fwd_rev ();
    Gc.full_major ();
    let w0 = Gc.minor_words () in
    let r = 5 in
    for _ = 1 to r do
      fwd_rev ()
    done;
    (Gc.minor_words () -. w0) /. float_of_int r
  in
  let mu = Sta.Arena.circuit_mu arena and var = Sta.Arena.circuit_var arena in
  Printf.printf
    "  n=%8d  depth=%3d  fwd=%10.4f ms (%.0f gates/s)  fwd+rev=%10.4f ms      (%.0f grads/s)  mu=%.6f\n%!"
    n_gates (levels - 1) fwd_ms
    (float_of_int n_gates /. (fwd_ms /. 1e3))
    fwd_rev_ms
    (float_of_int n_gates /. (fwd_rev_ms /. 1e3))
    mu;
  Printf.bprintf buf
    {|    { "n_gates": %d,
      "n_pis": %d,
      "depth": %d,
      "levels": %d,
      "level_width_min": %d,
      "level_width_max": %d,
      "level_width_mean": %.2f,
      "fanin_edges": %d,
      "gen_seconds": %.3f,
      "arena_bytes": %d,
      "reps": %d,
      "fwd_ms": %.4f,
      "fwd_gates_per_sec": %.0f,
      "fwd_rev_ms": %.4f,
      "grads_per_sec": %.0f,
      "words_per_eval": %.1f,
      "peak_rss_kb": %d,
      "circuit_mu": %.17g,
      "circuit_var": %.17g }|}
    n_gates
    (Circuit.Netlist.n_pis net)
    (levels - 1) levels !wmin !wmax
    (float_of_int n_gates /. float_of_int levels)
    fl.Circuit.Netlist.fi_off.(n_gates)
    gen_s (arena_bytes arena) reps fwd_ms
    (float_of_int n_gates /. (fwd_ms /. 1e3))
    fwd_rev_ms
    (float_of_int n_gates /. (fwd_rev_ms /. 1e3))
    words_per_eval (peak_rss_kb ()) mu var

let run_json ~out ~sizes () =
  section "Machine-readable benchmark snapshot" (fun () ->
      let sizes = match sizes with [] -> json_default_sizes | l -> l in
      let buf = Buffer.create 4096 in
      Printf.bprintf buf
        {|{ "schema_version": 1,
  "generator": "bench/main.exe json",
  "ocaml_version": %S,
  "word_size": %d,
  "kernels_inlined": %b,
  "timing": "min over 5 batches, mean over per-batch reps",
  "sizes": [
|}
        Sys.ocaml_version Sys.word_size (kernels_inlined ());
      List.iteri
        (fun i n ->
          if i > 0 then Buffer.add_string buf ",\n";
          json_one_size buf n)
        sizes;
      Buffer.add_string buf "\n  ]\n}\n";
      match out with
      | None -> print_string (Buffer.contents buf)
      | Some path ->
          Out_channel.with_open_text path (fun oc ->
              Out_channel.output_string oc (Buffer.contents buf));
          Printf.printf "  wrote %s\n" path)

let usage () =
  Printf.eprintf
    "usage: main.exe [--jobs N] [--out FILE] [--sizes N,N,...] \
     [all|tables|micro|parallel|arena|mcsta|resilience|gp|incremental|serve|table1|table2|table3|example|yield|mc|corner|ablation|extensions|scale|json]...\n"

let () =
  let out = ref None and size_list = ref [] in
  let rec parse jobs sections = function
    | [] -> (jobs, List.rev sections)
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> parse j sections rest
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %S\n" n;
            exit 2)
    | [ "--jobs" ] ->
        Printf.eprintf "--jobs expects an argument\n";
        exit 2
    | "--out" :: path :: rest ->
        out := Some path;
        parse jobs sections rest
    | [ "--out" ] ->
        Printf.eprintf "--out expects an argument\n";
        exit 2
    | "--sizes" :: ns :: rest -> (
        match
          String.split_on_char ',' ns
          |> List.map (fun x -> int_of_string_opt (String.trim x))
        with
        | sizes when List.for_all (function Some n -> n > 0 | None -> false) sizes
          ->
            size_list := List.filter_map Fun.id sizes;
            parse jobs sections rest
        | _ ->
            Printf.eprintf "--sizes expects positive integers, got %S\n" ns;
            exit 2)
    | [ "--sizes" ] ->
        Printf.eprintf "--sizes expects an argument\n";
        exit 2
    | s :: rest -> parse jobs (s :: sections) rest
  in
  let jobs, sections = parse 1 [] (List.tl (Array.to_list Sys.argv)) in
  let sections = if sections = [] then [ "all" ] else sections in
  let pool = if jobs > 1 then Some (Util.Pool.create ~jobs ()) else None in
  let run_section = function
    | "all" ->
        run_tables ?pool ();
        run_parallel ~jobs ();
        run_arena ();
        run_mcsta ~jobs ();
        run_gp ();
        run_incremental ?pool ();
        run_micro ()
    | "tables" -> run_tables ?pool ()
    | "micro" -> run_micro ()
    | "parallel" -> run_parallel ~jobs ()
    | "arena" -> run_arena ()
    | "mcsta" -> run_mcsta ~jobs ()
    | "resilience" -> run_resilience ()
    | "gp" -> run_gp ()
    | "serve" -> run_serve ()
    | "incremental" -> run_incremental ?pool ()
    | "table1" -> run_table1 ?pool ()
    | "table2" -> run_table2 ()
    | "table3" -> run_table3 ()
    | "example" -> run_example ()
    | "yield" -> run_yield ()
    | "mc" -> run_mc ()
    | "ablation" -> run_ablation ()
    | "extensions" -> run_extensions ()
    | "corner" -> run_corner ()
    | "scale" -> run_scale ?pool ()
    | "json" -> run_json ~out:!out ~sizes:!size_list ()
    | other ->
        Printf.eprintf "unknown section %S\n" other;
        usage ();
        exit 2
  in
  List.iter run_section sections;
  Option.iter Util.Pool.shutdown pool
